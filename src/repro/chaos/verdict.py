"""Chaos verdicts: did the platform recover, how fast, at what cost.

A :class:`ChaosVerdict` is computed purely from simulation state (the
AP capture, link/qdisc drop counters, client session flags, injector
timeline) — never from wall-clock — so the same scenario spec and seed
yields a byte-identical verdict object whether the cell ran serially,
in a worker process, or was replayed from the runner cache.

Recovery uses a two-sided band around the pre-fault baseline of U1's
downlink: sustained bins inside ``[f * baseline, baseline / f]`` count
as recovered, which covers both blackout faults (throughput collapses
to zero) and flash crowds (throughput explodes past the baseline).
Each verdict converts to a :class:`~repro.core.findings.Finding` so
report cards pick chaos results up next to the paper's five findings.
"""

from __future__ import annotations

import dataclasses
import typing

from ..capture.sniffer import DOWNLINK
from ..capture.timeseries import throughput_series
from ..core.findings import Finding, chaos_finding
from ..obs.context import obs_of
from .inject import FaultInjector, network_drop_total
from .scenarios import ChaosScenario, scenario_index

#: Throughput bin width for baseline/recovery detection.
BIN_S = 1.0
#: Consecutive in-band bins required to declare recovery.
SUSTAIN_BINS = 3
#: Baseline window length before the fault strikes.
BASELINE_WINDOW_S = 8.0
#: Recovery-time histogram buckets (seconds) — chaos recoveries run far
#: past the 10 s ceiling of the default obs buckets.
RECOVERY_BUCKETS = (0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 80.0, 120.0)


@dataclasses.dataclass(frozen=True)
class ChaosVerdict:
    """The outcome of one chaos campaign cell."""

    scenario: str
    platform: str
    intensity: str
    seed: int
    fault_at_s: float
    heal_at_s: float
    baseline_down_kbps: float
    recovered: bool
    #: Seconds from the heal point to the first sustained in-band
    #: window; None when the session never recovered in the
    #: observation window.
    recovery_time_s: typing.Optional[float]
    packets_lost: int
    users_dropped: int
    session_survival_rate: float
    passed: bool
    evidence: str
    #: QoE extension (defaulted so cached pre-QoE verdicts still load):
    #: worst per-user mean MOS score observed in the cell.
    qoe_worst_user_score: typing.Optional[float] = None
    #: Users whose mean score fell below the degraded threshold.
    qoe_users_below_threshold: int = 0
    #: Total breach duration of the default QoE SLO over the cell.
    qoe_slo_breach_s: float = 0.0
    #: Correlation ids (defaulted so cached pre-observability verdicts
    #: still load): the campaign and task this verdict came from.
    campaign_id: str = ""
    task_id: str = ""

    def to_finding(self) -> Finding:
        """One report-card entry per campaign cell."""
        return chaos_finding(
            scenario_index(self.scenario),
            f"chaos: {self.scenario} [{self.intensity}] on {self.platform}",
            self.passed,
            self.evidence,
        )


def compute_verdict(
    testbed,
    injector: FaultInjector,
    scenario: ChaosScenario,
    intensity: str,
    seed: int,
    end: float,
    qoe_probe=None,
) -> ChaosVerdict:
    """Judge one finished chaos run (the sim must already be at ``end``)."""
    fault_at, heal_at = injector.fault_at, injector.heal_at
    if fault_at is None or heal_at is None:
        raise RuntimeError("injector was never armed")
    u1 = testbed.u1
    down = throughput_series(
        [r for r in u1.sniffer.records if r.direction == DOWNLINK],
        0.0,
        end,
        BIN_S,
    )
    baseline = float(down.mean_kbps(fault_at - BASELINE_WINDOW_S, fault_at))
    times = [float(t) for t in down.times_s]
    kbps = [float(v) for v in down.kbps]
    recovered, recovery_time = _scan_recovery(
        times, kbps, heal_at, baseline, scenario.recover_fraction
    )

    drops_before = injector.drops_before_fault or 0
    packets_lost = max(0, network_drop_total(testbed) - drops_before)

    station_drops = sum(
        1
        for station in testbed.stations
        if station.client.frozen or station.client.udp_dead
    )
    users_dropped = station_drops + injector.rejected_users
    participants = len(testbed.stations) + injector.crowd_attempted
    survival = (participants - users_dropped) / participants

    passed = recovered and station_drops == 0
    evidence = (
        f"baseline {baseline:.1f} kbps; "
        f"recovery {'%.1f s' % recovery_time if recovered else 'none'} "
        f"after heal@{heal_at:.1f}s; "
        f"{packets_lost} packets lost; "
        f"{users_dropped}/{participants} users dropped "
        f"(survival {survival:.3f}); "
        f"timeline {[label for _, label in injector.events]}"
    )
    qoe_worst, qoe_below, qoe_breach_s = _qoe_fields(qoe_probe)
    if qoe_worst is not None:
        evidence += (
            f"; QoE worst user {qoe_worst:.2f} MOS, "
            f"{qoe_below} user(s) degraded, "
            f"SLO breach {qoe_breach_s:.1f}s"
        )
    verdict = ChaosVerdict(
        scenario=scenario.name,
        platform=testbed.profile.name,
        intensity=intensity,
        seed=seed,
        fault_at_s=round(fault_at, 6),
        heal_at_s=round(heal_at, 6),
        baseline_down_kbps=round(baseline, 6),
        recovered=recovered,
        recovery_time_s=round(recovery_time, 6) if recovered else None,
        packets_lost=packets_lost,
        users_dropped=users_dropped,
        session_survival_rate=round(survival, 6),
        passed=passed,
        evidence=evidence,
        qoe_worst_user_score=qoe_worst,
        qoe_users_below_threshold=qoe_below,
        qoe_slo_breach_s=qoe_breach_s,
    )
    _export_metrics(testbed, verdict)
    return verdict


def _qoe_fields(qoe_probe) -> typing.Tuple[typing.Optional[float], int, float]:
    """(worst user score, degraded users, default-SLO breach seconds)
    from an optional :class:`~repro.qoe.streams.QoeProbe`."""
    if qoe_probe is None or not qoe_probe.enabled:
        return None, 0, 0.0
    from ..qoe.model import DEGRADED_THRESHOLD
    from ..qoe.slo import DEFAULT_SLO, evaluate_slo

    scores = qoe_probe.window_scores()
    summaries = qoe_probe.user_summaries(scores=scores)
    if not summaries:
        return None, 0, 0.0
    worst = round(min(summary.mean_score for summary in summaries), 6)
    below = sum(
        1 for summary in summaries if summary.mean_score < DEGRADED_THRESHOLD
    )
    report = evaluate_slo(DEFAULT_SLO, scores)
    return worst, below, report.total_breach_s


def _scan_recovery(
    times: typing.Sequence[float],
    kbps: typing.Sequence[float],
    heal_at: float,
    baseline: float,
    recover_fraction: float,
) -> typing.Tuple[bool, float]:
    """First sustained window inside the recovery band after ``heal_at``."""
    if baseline <= 1e-9:
        # Degenerate: no pre-fault traffic to recover to.
        return True, 0.0
    lo = recover_fraction * baseline
    hi = baseline / recover_fraction
    # The final bin may be partial (clipped at the run end): never let
    # it decide a sustained window.
    usable = len(kbps) - 1
    for i in range(usable - SUSTAIN_BINS + 1):
        if times[i] < heal_at:
            continue
        if all(lo <= kbps[j] <= hi for j in range(i, i + SUSTAIN_BINS)):
            return True, max(0.0, times[i] - heal_at)
    return False, 0.0


def _export_metrics(testbed, verdict: ChaosVerdict) -> None:
    """Recovery-time histograms + loss counters into the obs registry."""
    obs = obs_of(testbed.sim)
    if not obs.enabled:
        return
    labels = {"scenario": verdict.scenario, "platform": verdict.platform}
    if verdict.recovered:
        obs.registry.histogram(
            "chaos.recovery_time_s", buckets=RECOVERY_BUCKETS, **labels
        ).observe(verdict.recovery_time_s)
    obs.registry.counter("chaos.packets_lost", **labels).inc(
        verdict.packets_lost
    )
    obs.registry.counter("chaos.users_dropped", **labels).inc(
        verdict.users_dropped
    )
    obs.registry.counter(
        "chaos.cells_total", outcome="pass" if verdict.passed else "fail", **labels
    ).inc()
