"""Declarative chaos scenario catalog.

Each :class:`ChaosScenario` is a pure description of one fault class —
what breaks, how hard each named intensity hits, and how long the
post-heal observation window runs.  Nothing in here touches the
simulator: the :mod:`repro.chaos.inject` engine interprets a scenario
against a live testbed, and :mod:`repro.chaos.campaign` expands the
catalog into a runner matrix.

The catalog extends the paper's Sec. 8 tc-netem disruptions (one user's
AP link) to the infrastructure faults a production platform actually
faces: server crashes with failover, regional outages, flapping access
links, correlated loss bursts, DNS/anycast misdirection, and flash
crowds (the avatar-dense events MetaVRadar highlights).

The registry is the single source of truth: the CLI listing, campaign
matrix, docs examples, and finding numbering are all derived from it —
there is no hand-maintained scenario list anywhere else.
"""

from __future__ import annotations

import dataclasses
import types
import typing


@dataclasses.dataclass(frozen=True)
class ChaosScenario:
    """One declarative fault-injection scenario.

    ``kind`` selects the injector implementation; ``intensities`` maps
    an intensity name to the knob values that implementation reads.
    ``fault_offset_s`` is how long after the session has settled the
    fault strikes, and ``observe_s`` how long after the heal point the
    run keeps measuring (the recovery window).  ``recover_fraction`` f
    defines the recovery band: U1's downlink throughput must sustain
    within ``[f * baseline, baseline / f]`` to count as recovered —
    two-sided, so both blackout faults (throughput collapses) and
    flash-crowd faults (throughput explodes) share one verdict rule.
    """

    name: str
    kind: str
    summary: str
    description: str
    intensities: typing.Mapping[str, typing.Mapping[str, float]]
    fault_offset_s: float = 5.0
    observe_s: float = 40.0
    recover_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not self.intensities:
            raise ValueError(f"scenario {self.name!r} declares no intensities")
        if not 0.0 < self.recover_fraction <= 1.0:
            raise ValueError(
                f"recover_fraction must be in (0, 1], got {self.recover_fraction}"
            )
        # Freeze the nested mappings so a registered scenario is
        # genuinely immutable (specs are shared across campaign cells).
        frozen = types.MappingProxyType(
            {
                name: types.MappingProxyType(dict(params))
                for name, params in self.intensities.items()
            }
        )
        object.__setattr__(self, "intensities", frozen)

    @property
    def intensity_names(self) -> typing.Tuple[str, ...]:
        return tuple(sorted(self.intensities))

    def params(self, intensity: str) -> typing.Dict[str, float]:
        try:
            return dict(self.intensities[intensity])
        except KeyError:
            known = ", ".join(self.intensity_names)
            raise KeyError(
                f"scenario {self.name!r} has no intensity {intensity!r}; "
                f"choose from: {known}"
            ) from None


#: Registration order is load-bearing: it fixes each scenario's stable
#: finding number (see :func:`scenario_index`).
SCENARIOS: typing.Dict[str, ChaosScenario] = {}


def register_scenario(scenario: ChaosScenario) -> ChaosScenario:
    if scenario.name in SCENARIOS:
        raise ValueError(f"scenario {scenario.name!r} already registered")
    SCENARIOS[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> ChaosScenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(
            f"unknown chaos scenario {name!r}; choose from: {known}"
        ) from None


def list_scenarios() -> typing.List[ChaosScenario]:
    """Every registered scenario, in registration order."""
    return list(SCENARIOS.values())


def scenario_index(name: str) -> int:
    """Stable catalog position (fixes the chaos finding number)."""
    get_scenario(name)
    return list(SCENARIOS).index(name)


# ----------------------------------------------------------------------
# The catalog
# ----------------------------------------------------------------------
register_scenario(
    ChaosScenario(
        name="server-crash",
        kind="server-crash",
        summary="crash U1's data server; fail over to another region",
        description=(
            "The physical server instance carrying U1's avatar data goes "
            "dark (every link of its host is downed).  After a detection "
            "delay, UDP platforms fail the affected room members over to "
            "an instance in another deployed region — resolved through "
            "PlacementDeployment.host_for(region=...), re-deploying a "
            "fresh instance when the placement has no spare — while "
            "HTTPS platforms (Hubs) ride out the outage until the host "
            "restarts."
        ),
        intensities={
            "mild": {"detect_s": 2.0, "outage_s": 10.0},
            "severe": {"detect_s": 6.0, "outage_s": 25.0},
        },
    )
)

register_scenario(
    ChaosScenario(
        name="regional-outage",
        kind="regional-outage",
        summary="black-hole every backbone link of the serving region",
        description=(
            "All backbone links incident to the core router of the "
            "region hosting U1's data server go down at once (a net.geo "
            "region-scale outage, pre-BGP-reconvergence: traffic keeps "
            "routing into the dead links and drops).  The region returns "
            "after the outage window."
        ),
        intensities={
            "mild": {"outage_s": 8.0},
            "severe": {"outage_s": 20.0},
        },
    )
)

register_scenario(
    ChaosScenario(
        name="link-flap",
        kind="link-flap",
        summary="repeatedly bounce U1's access link mid-session",
        description=(
            "U1's WiFi access link (both directions) flaps: down for "
            "down_s, up for up_s, repeated flaps times — the mid-session "
            "connectivity churn of a roaming or interference-prone "
            "client."
        ),
        intensities={
            "mild": {"flaps": 2, "down_s": 2.0, "up_s": 4.0},
            "severe": {"flaps": 5, "down_s": 5.0, "up_s": 2.0},
        },
    )
)

register_scenario(
    ChaosScenario(
        name="loss-burst",
        kind="loss-burst",
        summary="correlated random-loss bursts on both link directions",
        description=(
            "Bursts of Bernoulli loss hit U1's uplink and downlink "
            "simultaneously (correlated, unlike the paper's one-"
            "direction Sec. 8.2 sweep).  Each burst is healed with "
            "NetemQdisc.reset(), which flushes shaping state and "
            "delivers any queued bytes immediately."
        ),
        intensities={
            "mild": {"loss_rate": 0.5, "burst_s": 5.0, "bursts": 1, "gap_s": 0.0},
            "severe": {"loss_rate": 0.95, "burst_s": 8.0, "bursts": 2, "gap_s": 4.0},
        },
    )
)

register_scenario(
    ChaosScenario(
        name="dns-misdirection",
        kind="dns-misdirection",
        summary="resolve U1's data service to the farthest deployment",
        description=(
            "A poisoned DNS answer / leaked anycast route points U1's "
            "data channel at the geographically farthest deployed "
            "instance instead of the nearest (core.anycast's proximity "
            "inference is exactly what this breaks).  Single-instance "
            "and HTTPS deployments model the detour as added path "
            "latency on the access link instead.  The correct mapping "
            "returns at heal time."
        ),
        intensities={
            "mild": {"duration_s": 12.0, "detour_delay_s": 0.08},
            "severe": {"duration_s": 25.0, "detour_delay_s": 0.25},
        },
    )
)

register_scenario(
    ChaosScenario(
        name="flash-crowd",
        kind="flash-crowd",
        summary="thousands of users storm U1's room, then disperse",
        description=(
            "A flash crowd joins U1's room in per-second batches over "
            "ramp_s seconds (members total), holds for hold_s, then "
            "disperses.  The crowd is carried by repro.scale's "
            "FluidCrowd aggregation, so 10k joins stay O(1) simulator "
            "processes; joins beyond the platform's room capacity are "
            "rejected and counted as dropped users (the Sec. 6.2 event "
            "caps, exercised to their limit)."
        ),
        intensities={
            "mild": {"members": 1000, "ramp_s": 10.0, "hold_s": 10.0},
            "severe": {"members": 10000, "ramp_s": 20.0, "hold_s": 15.0},
        },
    )
)
