"""repro.chaos: declarative fault injection and resiliency campaigns.

The robustness pillar on top of the measurement testbed: a scenario
catalog (:mod:`.scenarios`), a kernel-scheduled fault-injection engine
(:mod:`.inject`), a deterministic verdict layer (:mod:`.verdict`), and
a campaign driver (:mod:`.campaign`) that expands fault x intensity x
platform matrices through :mod:`repro.runner`.  See ``docs/CHAOS.md``.

Exports resolve lazily (PEP 562) so that importing the scenario
catalog alone — e.g. for CLI help text — does not pull in the full
testbed stack.
"""

_EXPORTS = {
    "ChaosCampaignOutcome": ".campaign",
    "build_chaos_plan": ".campaign",
    "run_chaos_campaign": ".campaign",
    "run_chaos_cell": ".campaign",
    "FaultInjector": ".inject",
    "SCENARIOS": ".scenarios",
    "ChaosScenario": ".scenarios",
    "get_scenario": ".scenarios",
    "list_scenarios": ".scenarios",
    "register_scenario": ".scenarios",
    "scenario_index": ".scenarios",
    "ChaosVerdict": ".verdict",
    "compute_verdict": ".verdict",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    module = importlib.import_module(module_name, __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
