"""Partition a :class:`~repro.measure.session.Testbed` into LP domains.

The testbed topology has a natural space-parallel shape:

* **hub domain (0)** — every platform server host, the room registry and
  deployment state, lightweight peers / fluid crowds (they call server
  methods directly), and the backbone core routers that serve servers or
  more than one station domain;
* **station domains (1..n-1)** — each observed user's cell: device host,
  access point, the access links between them, their netem qdiscs, the
  platform client, and the OVR metrics sampler.  Stations are spread
  round-robin, so any ``lp_domains`` count between 1 and
  ``len(stations) + 1`` is meaningful (larger values clamp).

A core router is *promoted* into a station domain when every non-core
node attached to it belongs to that one domain — then the cut moves from
the AP↔core hop (0.8 ms lookahead) out to the backbone mesh
(geographic delays, typically 10–40× larger windows).  With a server
host or a second station domain on the same metro, the core stays in the
hub and the AP↔core delay bounds the window instead.

Partitioning must happen before any event is scheduled (``Testbed``
calls it at the end of construction): runtime-created objects — sockets,
TCP connections, timers, processes — then inherit the right kernel from
their host automatically, and nothing needs to migrate.
"""

from __future__ import annotations

import typing

from ..net.node import Router
from ..simcore.lp import DomainKernel, ParallelSimulator


def partition_testbed(
    testbed, lp_domains: int, executor: str = "threads"
) -> typing.Optional[ParallelSimulator]:
    """Split ``testbed`` into ``lp_domains`` domains; None means serial.

    Returns the :class:`ParallelSimulator` driving the partition, or
    ``None`` when the request degenerates to a single domain (one user,
    ``lp_domains=1``) — the caller then runs the serial kernel as-is.
    """
    if lp_domains < 1:
        raise ValueError(f"lp_domains must be >= 1, got {lp_domains}")
    n_station_domains = min(lp_domains - 1, len(testbed.stations))
    if n_station_domains < 1:
        return None

    hub = testbed.sim
    if hub.pending_events() != 0:
        raise RuntimeError(
            "testbed must be partitioned before any event is scheduled"
        )
    if hub._ticks is not None and not hub._ticks.quiescent:
        raise RuntimeError("testbed must be partitioned while ticks are quiescent")

    network = testbed.network
    assignment = build_assignment(testbed, n_station_domains)
    plan = network.plan_domains(assignment, n_station_domains + 1)
    if not plan.cut_links:
        return None

    kernels: list = [hub]
    for index in range(1, n_station_domains + 1):
        kernels.append(
            DomainKernel(
                index,
                name=f"stations-{index}",
                streams=hub.streams,
            )
        )
    parallel = ParallelSimulator(
        kernels, plan.lookahead, hub_index=0, executor=executor
    )
    parallel.plan = plan

    # Rebind construction-time components into their domain kernels.
    for name, node in network.nodes.items():
        domain = assignment[name]
        if domain:
            node.sim = kernels[domain]
    for src_name, dst_name, data in network.graph.edges(data=True):
        link = data["link"]
        src_domain = assignment[src_name]
        if src_domain:
            link.sim = kernels[src_domain]
            if link.qdisc is not None:
                link.qdisc.sim = kernels[src_domain]
        if src_domain != assignment[dst_name]:
            link._lp_sink = parallel.envelope_sink(
                src_domain, assignment[dst_name]
            )
    for station in testbed.stations:
        domain = assignment[station.host.name]
        if domain:
            station.client.sim = kernels[domain]
            station.sampler.sim = kernels[domain]

    # Server-side state mutated from client-domain events goes through
    # the deferred-op bridge instead of reaching across the boundary.
    testbed.deployment._lp = parallel
    return parallel


def build_assignment(testbed, n_station_domains: int) -> dict:
    """Node-name → domain-index map for ``testbed``'s topology."""
    network = testbed.network
    assignment = {name: 0 for name in network.nodes}
    for index, station in enumerate(testbed.stations):
        domain = 1 + (index % n_station_domains)
        assignment[station.host.name] = domain
        assignment[station.ap.name] = domain
    graph = network.graph
    for router in testbed.site_routers.values():
        neighbor_domains = set()
        for neighbor in graph.successors(router.name):
            if isinstance(network.nodes[neighbor], Router):
                continue  # backbone peers don't anchor a core
            neighbor_domains.add(assignment[neighbor])
        if len(neighbor_domains) == 1:
            (domain,) = neighbor_domains
            if domain:
                assignment[router.name] = domain
    return assignment
