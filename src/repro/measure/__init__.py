"""Measurement harness: testbeds, experiments, statistics, reports."""

from .disruption import (
    DisruptionRun,
    QoeAssessment,
    StageMetrics,
    assess_latency_disruption,
    assess_loss_disruption,
    run_downlink_disruption,
    run_tcp_uplink_control,
    run_uplink_disruption,
)
from .autodriver import (
    AutoDriver,
    InputEvent,
    InputScript,
    latency_probe_script,
    walk_and_chat_script,
)
from .experiment import (
    ExperimentSpec,
    get_experiment,
    list_experiments,
    run_experiment,
)
from .infrastructure import (
    ChannelProbeReport,
    InfrastructureReport,
    PlatformUnavailableError,
    RegionProbe,
    probe_from_vantage,
    probe_infrastructure,
    regional_study,
)
from .prediction import ViewportTradeoffPoint, run_viewport_tradeoff
from .repetition import RepeatedResult, repeat
from .workload import CrowdChurn, PublicEventResult, run_public_event
from .latency import LatencyBreakdown, measure_latency, measure_latency_scaling
from .report import render_series, render_table, sparkline
from .scalability import (
    JoinTimeline,
    ScalabilityPoint,
    ViewportDetection,
    detect_viewport_width,
    run_hubs_large_scale,
    run_join_timeline,
    run_user_sweep,
)
from .session import Testbed, UserStation
from .stats import LinearFit, Summary, linear_fit, linearity_r2, percent_change, summarize
from .throughput import (
    ChannelTimeline,
    ForwardingEvidence,
    TwoUserThroughput,
    measure_avatar_throughput,
    measure_channel_timeline,
    measure_forwarding_correlation,
    measure_two_user_throughput,
    table3_row,
)

__all__ = [
    "DisruptionRun",
    "QoeAssessment",
    "StageMetrics",
    "assess_latency_disruption",
    "assess_loss_disruption",
    "run_downlink_disruption",
    "run_tcp_uplink_control",
    "run_uplink_disruption",
    "AutoDriver",
    "InputEvent",
    "InputScript",
    "latency_probe_script",
    "walk_and_chat_script",
    "ExperimentSpec",
    "get_experiment",
    "list_experiments",
    "run_experiment",
    "ChannelProbeReport",
    "InfrastructureReport",
    "PlatformUnavailableError",
    "RegionProbe",
    "probe_from_vantage",
    "probe_infrastructure",
    "regional_study",
    "ViewportTradeoffPoint",
    "run_viewport_tradeoff",
    "RepeatedResult",
    "repeat",
    "CrowdChurn",
    "PublicEventResult",
    "run_public_event",
    "LatencyBreakdown",
    "measure_latency",
    "measure_latency_scaling",
    "render_series",
    "render_table",
    "sparkline",
    "JoinTimeline",
    "ScalabilityPoint",
    "ViewportDetection",
    "detect_viewport_width",
    "run_hubs_large_scale",
    "run_join_timeline",
    "run_user_sweep",
    "Testbed",
    "UserStation",
    "LinearFit",
    "Summary",
    "linear_fit",
    "linearity_r2",
    "percent_change",
    "summarize",
    "ChannelTimeline",
    "ForwardingEvidence",
    "TwoUserThroughput",
    "measure_avatar_throughput",
    "measure_channel_timeline",
    "measure_forwarding_correlation",
    "measure_two_user_throughput",
    "table3_row",
]
