"""Network-disruption experiments (Sec. 8): Figs. 12-13 and Sec. 8.2.

The paper shapes U1's access link with ``tc-netem`` while two users
play a shooting game (Arena Clash on Worlds), in staged conditions of
40 s followed by 60 s of recovery:

* downlink bandwidth: 1.0/0.7/0.5/0.3/0.2/0.1 Mbps (Fig. 12),
* uplink bandwidth: 1.5/1.2/1.0/0.7/0.5/0.3 Mbps (Fig. 13 top),
* TCP-only uplink delay 5/10/15 s then 100% TCP loss (Fig. 13 bottom),
* added latency 50-500 ms and packet loss 1-20% (Sec. 8.2).
"""

from __future__ import annotations

import dataclasses
import typing

from ..capture.sniffer import DOWNLINK, UPLINK
from ..capture.timeseries import throughput_series
from ..net.packet import Protocol
from .latency import measure_latency
from .session import Testbed, download_drain_s
from .stats import Summary, summarize

STAGE_S = 40.0
RECOVERY_S = 60.0
SETTLE_S = 8.0

DOWNLINK_STAGES_MBPS = (1.0, 0.7, 0.5, 0.3, 0.2, 0.1)
UPLINK_STAGES_MBPS = (1.5, 1.2, 1.0, 0.7, 0.5, 0.3)
TCP_DELAY_STAGES_S = (5.0, 10.0, 15.0)
LATENCY_STAGES_MS = (50, 100, 200, 300, 400, 500)
LOSS_STAGES = (0.01, 0.03, 0.05, 0.07, 0.10, 0.20)

#: Sec. 8.2: extra latency that ruins a shooting game.
GAME_LATENCY_THRESHOLD_MS = 50.0
#: Sec. 8.2: E2E latency beyond which walking/chatting feels degraded.
CHAT_E2E_THRESHOLD_MS = 300.0
#: Motion-prediction/interpolation horizon: update gaps shorter than
#: this are concealed by the client (Sec. 8.2: even 20% loss goes
#: unnoticed — avatars are coarse and missing motion is predicted).
PREDICTION_HORIZON_S = 1.5


@dataclasses.dataclass
class StageMetrics:
    """Mean client metrics during one disruption stage."""

    label: str
    start: float
    end: float
    up_kbps: Summary
    down_kbps: Summary
    udp_up_kbps: Summary
    tcp_up_kbps: Summary
    cpu_pct: Summary
    gpu_pct: Summary
    fps: Summary
    stale_per_s: Summary


@dataclasses.dataclass
class DisruptionRun:
    """A full staged-disruption run on one user."""

    platform: str
    scenario: str
    stages: typing.List[StageMetrics]
    #: Full per-second series for figure-style output.
    times_s: typing.List[float]
    up_kbps: typing.List[float]
    down_kbps: typing.List[float]
    udp_up_kbps: typing.List[float]
    tcp_up_kbps: typing.List[float]
    u2_down_kbps: typing.List[float]
    frozen: bool
    udp_dead: bool
    tcp_recovered: bool
    clock_sync_stale_during_delay: bool


def _game_testbed(platform: str, seed: int) -> Testbed:
    testbed = Testbed(platform, n_users=2, seed=seed)
    testbed.start_all(join_at=2.0)

    def start_game() -> None:
        for station in testbed.stations:
            station.client.in_game = True

    testbed.sim.schedule_at(2.0 + SETTLE_S / 2, start_game)
    return testbed


def _collect(testbed: Testbed, scenario: str, stages, end: float) -> DisruptionRun:
    u1 = testbed.u1
    records = u1.sniffer.records
    up = throughput_series([r for r in records if r.direction == UPLINK], 0, end, 1.0)
    down = throughput_series(
        [r for r in records if r.direction == DOWNLINK], 0, end, 1.0
    )
    udp_up = throughput_series(
        [r for r in records if r.direction == UPLINK and r.protocol is Protocol.UDP],
        0,
        end,
        1.0,
    )
    tcp_up = throughput_series(
        [r for r in records if r.direction == UPLINK and r.protocol is Protocol.TCP],
        0,
        end,
        1.0,
    )
    u2_down = throughput_series(
        [
            r
            for r in testbed.u2.sniffer.records
            if r.direction == DOWNLINK and r.protocol is Protocol.UDP
        ],
        0,
        end,
        1.0,
    )
    stage_metrics = []
    for label, start, stop in stages:
        window = u1.sampler.window(start, stop)
        in_window = lambda series: [
            v for t, v in zip(series.times_s, series.kbps) if start <= t < stop
        ]
        stage_metrics.append(
            StageMetrics(
                label=label,
                start=start,
                end=stop,
                up_kbps=summarize(in_window(up)),
                down_kbps=summarize(in_window(down)),
                udp_up_kbps=summarize(in_window(udp_up)),
                tcp_up_kbps=summarize(in_window(tcp_up)),
                cpu_pct=summarize([s.cpu_pct for s in window]),
                gpu_pct=summarize([s.gpu_pct for s in window]),
                fps=summarize([s.fps for s in window]),
                stale_per_s=summarize([s.stale_per_s for s in window]),
            )
        )
    return DisruptionRun(
        platform=testbed.profile.name,
        scenario=scenario,
        stages=stage_metrics,
        times_s=list(up.times_s),
        up_kbps=list(up.kbps),
        down_kbps=list(down.kbps),
        udp_up_kbps=list(udp_up.kbps),
        tcp_up_kbps=list(tcp_up.kbps),
        u2_down_kbps=list(u2_down.kbps),
        frozen=u1.client.frozen,
        udp_dead=u1.client.udp_dead,
        tcp_recovered=u1.client.control.tcp.all_acked,
        clock_sync_stale_during_delay=False,
    )


def run_downlink_disruption(
    platform: str = "worlds",
    stages_mbps: typing.Sequence[float] = DOWNLINK_STAGES_MBPS,
    seed: int = 0,
) -> DisruptionRun:
    """Fig. 12: staged downlink bandwidth limits during a game."""
    testbed = _game_testbed(platform, seed)
    stages = []
    t = SETTLE_S + 2.0
    for rate in stages_mbps:
        testbed.sim.schedule_at(
            t, testbed.u1.netem_down.configure, rate * 1e6, 0.0, 0.0, None
        )
        stages.append((f"{rate}", t, t + STAGE_S))
        t += STAGE_S
    testbed.sim.schedule_at(t, testbed.u1.netem_down.clear)
    stages.append(("N", t, t + RECOVERY_S))
    end = t + RECOVERY_S
    testbed.run(until=end)
    return _collect(testbed, "downlink-bandwidth", stages, end)


def run_uplink_disruption(
    platform: str = "worlds",
    stages_mbps: typing.Sequence[float] = UPLINK_STAGES_MBPS,
    seed: int = 0,
) -> DisruptionRun:
    """Fig. 13 (top): staged uplink bandwidth limits during a game."""
    testbed = _game_testbed(platform, seed)
    stages = []
    t = SETTLE_S + 2.0
    for rate in stages_mbps:
        testbed.sim.schedule_at(
            t, testbed.u1.netem_up.configure, rate * 1e6, 0.0, 0.0, None
        )
        stages.append((f"{rate}", t, t + STAGE_S))
        t += STAGE_S
    testbed.sim.schedule_at(t, testbed.u1.netem_up.clear)
    stages.append(("N", t, t + RECOVERY_S))
    end = t + RECOVERY_S
    testbed.run(until=end)
    return _collect(testbed, "uplink-bandwidth", stages, end)


def run_tcp_uplink_control(
    platform: str = "worlds",
    delay_stages_s: typing.Sequence[float] = TCP_DELAY_STAGES_S,
    delay_stage_len_s: float = 60.0,
    loss_stage_len_s: float = 60.0,
    recovery_len_s: float = 60.0,
    seed: int = 0,
) -> DisruptionRun:
    """Fig. 13 (bottom): shape *only* TCP uplink traffic.

    Increasing delays open matching gaps in the UDP uplink (Worlds
    blocks UDP until TCP delivery); 100% TCP loss kills the UDP session
    after ~30 s and the screen freezes; clearing the loss lets TCP
    recover but not UDP.
    """
    testbed = _game_testbed(platform, seed)
    stages = []
    # Warm up through a few report cycles first so the control
    # connection's congestion window holds a full report — on the real
    # platform the connection is long-lived and already warm.
    t = SETTLE_S + 2.0 + 30.0
    clock_stale_seen = {"value": False}
    delay_phase_start = t
    for delay in delay_stages_s:
        testbed.sim.schedule_at(
            t, testbed.u1.netem_up.configure, None, delay, 0.0, Protocol.TCP
        )
        stages.append((f"{delay:.0f}s", t, t + delay_stage_len_s))
        t += delay_stage_len_s

    def check_clock() -> None:
        # The in-game countdown board stops updating in real time while
        # TCP (which carries clock sync) is delayed (Sec. 8.1).
        if testbed.u1.client.clock_sync_stale:
            clock_stale_seen["value"] = True

    probe_time = delay_phase_start + 5.0
    while probe_time < t:
        testbed.sim.schedule_at(probe_time, check_clock)
        probe_time += 2.0
    testbed.sim.schedule_at(
        t, testbed.u1.netem_up.configure, None, 0.0, 1.0, Protocol.TCP
    )
    stages.append(("100%", t, t + loss_stage_len_s))
    t += loss_stage_len_s
    testbed.sim.schedule_at(t, testbed.u1.netem_up.clear)
    stages.append(("N", t, t + recovery_len_s))
    end = t + recovery_len_s
    testbed.run(until=end)
    run = _collect(testbed, "tcp-uplink-priority", stages, end)
    run.clock_sync_stale_during_delay = clock_stale_seen["value"]
    return run


# ----------------------------------------------------------------------
# Sec. 8.2 — latency and packet-loss disruption QoE
# ----------------------------------------------------------------------
@dataclasses.dataclass
class QoeAssessment:
    """Whether a disruption level is perceptible, and why."""

    platform: str
    scenario: str  # "chat" or "game"
    added_latency_ms: float
    loss_rate: float
    measured_e2e_ms: typing.Optional[float]
    max_update_gap_s: float
    disturbed: bool
    reason: str


def assess_latency_disruption(
    platform: str,
    added_latency_ms: float,
    scenario: str = "chat",
    seed: int = 0,
    n_actions: int = 12,
) -> QoeAssessment:
    """Sec. 8.2: add symmetric latency and judge the experience.

    Walking/chatting degrades when total E2E exceeds ~300 ms; gaming
    degrades with as little as 50 ms of added latency.
    """
    testbed = Testbed(platform, n_users=2, seed=seed)
    testbed.start_all(join_at=2.0)
    # tc-netem adds the full configured delay to each direction of
    # U1's access link (the paper's "Uplink/Downlink Latency" knob).
    delay_s = added_latency_ms / 1000.0
    testbed.u1.netem_up.configure(None, delay_s, 0.0, None)
    testbed.u1.netem_down.configure(None, delay_s, 0.0, None)
    first_action = 2.0 + SETTLE_S + download_drain_s(testbed.profile)
    for k in range(n_actions):
        testbed.u1.client.perform_action(k, first_action + k * 2.0)
    end = first_action + n_actions * 2.0 + 3.0
    testbed.run(until=end)
    shown = [
        rec["display_at"] - testbed.u1.client.sent_actions[k]["t0"]
        for k, rec in testbed.u2.client.action_displays.items()
        if k in testbed.u1.client.sent_actions
    ]
    e2e_ms = 1000.0 * sum(shown) / len(shown) if shown else None
    if scenario == "game":
        disturbed = added_latency_ms >= GAME_LATENCY_THRESHOLD_MS
        reason = (
            f"added {added_latency_ms:.0f} ms vs {GAME_LATENCY_THRESHOLD_MS:.0f} ms "
            "gaming threshold"
        )
    else:
        disturbed = e2e_ms is not None and e2e_ms > CHAT_E2E_THRESHOLD_MS
        reason = (
            f"measured E2E {e2e_ms:.0f} ms vs {CHAT_E2E_THRESHOLD_MS:.0f} ms "
            "collaborative threshold"
            if e2e_ms is not None
            else "no actions delivered"
        )
    return QoeAssessment(
        platform=testbed.profile.name,
        scenario=scenario,
        added_latency_ms=added_latency_ms,
        loss_rate=0.0,
        measured_e2e_ms=e2e_ms,
        max_update_gap_s=0.0,
        disturbed=disturbed,
        reason=reason,
    )


def assess_loss_disruption(
    platform: str,
    loss_rate: float,
    window_s: float = 30.0,
    seed: int = 0,
) -> QoeAssessment:
    """Sec. 8.2: apply symmetric random loss and judge the experience.

    Users perceive nothing up to 20% loss: avatars are coarse and
    motion prediction conceals gaps shorter than the prediction
    horizon. Disturbance requires an update gap the predictor cannot
    cover.
    """
    testbed = Testbed(platform, n_users=2, seed=seed)
    testbed.start_all(join_at=2.0)
    testbed.u1.netem_down.configure(None, 0.0, loss_rate, None)
    testbed.u1.netem_up.configure(None, 0.0, loss_rate, None)
    start = 2.0 + SETTLE_S + download_drain_s(testbed.profile)
    end = start + window_s
    testbed.run(until=end)
    # Largest gap between consecutive avatar-data packets on U1's
    # downlink during the lossy window.
    data_times = [
        r.time
        for r in testbed.u1.sniffer.records
        if r.direction == DOWNLINK and r.size >= 85 and start <= r.time < end
    ]
    max_gap = 0.0
    for previous, current in zip(data_times, data_times[1:]):
        max_gap = max(max_gap, current - previous)
    disturbed = max_gap > PREDICTION_HORIZON_S
    return QoeAssessment(
        platform=testbed.profile.name,
        scenario="chat",
        added_latency_ms=0.0,
        loss_rate=loss_rate,
        measured_e2e_ms=None,
        max_update_gap_s=max_gap,
        disturbed=disturbed,
        reason=(
            f"max update gap {max_gap * 1000:.0f} ms vs "
            f"{PREDICTION_HORIZON_S * 1000:.0f} ms prediction horizon"
        ),
    )
