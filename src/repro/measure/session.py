"""The measurement testbed (Sec. 3.2 of the paper).

A :class:`Testbed` builds the full world for one experiment:

* an Internet backbone (core routers at every modelled metro, meshed
  with geographic propagation delays),
* the platform's deployment (control/data/voice servers per its
  placement profile),
* one station per user: device host <-> WiFi AP <-> nearest core
  router, with a Wireshark-style sniffer and tc-netem qdiscs on the
  access links, an OVR-metrics sampler, and a platform client,
* optional lightweight crowd peers for public-event experiments.

Both test users sit on the U.S. east coast by default, behind two
different APs on the same campus network, exactly as in the paper.
"""

from __future__ import annotations

import dataclasses
import typing

from ..capture.sniffer import Sniffer
from ..device.headset import HeadsetProfile, device as device_profile
from ..device.metrics import OvrMetricsSampler
from ..net.dns import Resolver
from ..net.geo import (
    ALL_SITES,
    EAST_US,
    EUROPE_UK,
    LOS_ANGELES,
    MIDDLE_EAST,
    NORTH_US,
    WEST_US,
    Location,
)
from ..net.netem import NetemQdisc
from ..net.topology import ACCESS_BANDWIDTH, Network
from ..platforms.base import LightweightPeer, PlatformClient, PlatformDeployment
from ..platforms.profiles import get_profile
from ..platforms.spec import PlatformProfile
from ..avatar.pose import Vec3
from ..simcore import Simulator

#: One-way delay AP <-> core router (campus aggregation folded in).
AP_UPLINK_DELAY_S = 0.0008
#: One-way WiFi delay device <-> AP.
WIFI_DELAY_S = 0.001
DEFAULT_ROOM = "event-1"

BACKBONE_SITES = (EAST_US, NORTH_US, WEST_US, LOS_ANGELES, EUROPE_UK, MIDDLE_EAST)


@dataclasses.dataclass
class UserStation:
    """Everything attached to one test user."""

    index: int
    user_id: str
    location: Location
    device: HeadsetProfile
    host: object
    ap: object
    uplink: object  # device -> AP link (netem_up lives here)
    downlink: object  # AP -> device link (netem_down lives here)
    sniffer: Sniffer
    netem_up: NetemQdisc
    netem_down: NetemQdisc
    client: PlatformClient
    sampler: OvrMetricsSampler


class Testbed:
    """A complete, runnable measurement setup for one platform."""

    #: Not a pytest test class, despite the name.
    __test__ = False

    def __init__(
        self,
        platform: typing.Union[str, PlatformProfile] = "vrchat",
        n_users: int = 2,
        seed: int = 0,
        user_locations: typing.Optional[typing.Sequence[Location]] = None,
        devices: typing.Optional[typing.Sequence[str]] = None,
        room_id: str = DEFAULT_ROOM,
        muted: bool = True,
        retain_records: bool = True,
        obs=None,
        lp_domains: int = 1,
        lp_executor: str = "threads",
    ) -> None:
        """``retain_records=False`` puts every station's sniffer in
        streaming mode: register accumulators via
        ``station.sniffer.stream_bins(...)`` before running, and no
        per-packet :class:`~repro.capture.sniffer.PacketRecord` objects
        are kept (long runs then need O(bins) capture memory).

        ``obs`` is handed straight to the :class:`Simulator` — pass a
        :class:`~repro.obs.MetricsOnlyObservability` to light up the
        metric registry (e.g. for :mod:`repro.qoe`) without the
        per-event kernel profiling of a full collector.

        ``lp_domains > 1`` partitions the world into that many LP
        domains (servers + backbone in the hub, stations spread over
        the rest; see :mod:`repro.measure.partition`) executed under a
        conservative parallel sync driver.  Merged output is
        byte-identical to the serial kernel for any domain count —
        gated by tests/test_lp_domains.py.  ``lp_executor`` picks the
        wave executor: ``"threads"`` (parallel wall-clock on multi-core
        hosts) or ``"serial"`` (same schedule, calling thread only)."""
        if isinstance(platform, PlatformProfile):
            self.profile = platform
        else:
            self.profile = get_profile(platform)
        self.room_id = room_id
        self.sim = Simulator(seed=seed, obs=obs)
        self.network = Network(self.sim)
        self.resolver = Resolver()

        # Backbone mesh.
        self.site_routers = {}
        for site in BACKBONE_SITES:
            self.site_routers[site.name] = self.network.add_router(
                f"core-{site.name}", site
            )
        sites = list(BACKBONE_SITES)
        for i, a in enumerate(sites):
            for b in sites[i + 1 :]:
                # A touch of propagation jitter gives the sub-millisecond
                # RTT standard deviations the paper's Table 2 reports.
                self.network.connect(
                    self.site_routers[a.name],
                    self.site_routers[b.name],
                    jitter_s=0.0002,
                )

        # Platform deployment.
        self.deployment = PlatformDeployment(
            self.sim,
            self.network,
            self.profile,
            self.site_routers,
            resolver=self.resolver,
        )

        # User stations.
        locations = list(user_locations or [EAST_US] * n_users)
        if len(locations) != n_users:
            raise ValueError(
                f"user_locations has {len(locations)} entries for {n_users} users"
            )
        device_names = list(devices or ["quest2"] * n_users)
        if len(device_names) != n_users:
            raise ValueError(
                f"devices has {len(device_names)} entries for {n_users} users"
            )
        self._n_users = n_users
        self._muted = muted
        self._retain_records = retain_records
        self.stations: typing.List[UserStation] = []
        for index in range(n_users):
            self.stations.append(
                self._make_station(index, locations[index], device_names[index])
            )
        self.peers: typing.List[LightweightPeer] = []
        self.network.build_routes()

        #: Parallel LP driver (None = serial).  Partitioning must happen
        #: here, before any event is scheduled: everything created at
        #: runtime (sockets, TCP connections, timers, peers) then lands
        #: on the right domain kernel by construction.
        self.psim = None
        if lp_domains > 1:
            from .partition import partition_testbed

            self.psim = partition_testbed(self, lp_domains, executor=lp_executor)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _make_station(self, index: int, location: Location, device_name: str) -> UserStation:
        user_id = f"u{index + 1}"
        core = self.site_routers[_nearest_site_name(location)]
        ap = self.network.add_access_point(f"ap-{user_id}", location)
        self.network.connect(ap, core, delay_s=AP_UPLINK_DELAY_S, jitter_s=0.0001)
        host = self.network.add_host(user_id, location)
        uplink, downlink = self.network.connect(
            host, ap, bandwidth_bps=ACCESS_BANDWIDTH, delay_s=WIFI_DELAY_S
        )
        netem_up = NetemQdisc(self.sim, rng_name=f"netem-up-{user_id}")
        netem_down = NetemQdisc(self.sim, rng_name=f"netem-down-{user_id}")
        uplink.attach_qdisc(netem_up)
        downlink.attach_qdisc(netem_down)
        sniffer = Sniffer(
            f"ap-{user_id}-capture", retain_records=self._retain_records
        )
        sniffer.attach_access_links(uplink, downlink)
        client = PlatformClient(
            self.sim,
            self.deployment,
            host,
            user_id,
            index,
            device=device_profile(device_name),
            muted=self._muted,
        )
        # Users stand on a small circle around the room centre, facing
        # inward — with two users they face each other; crowd peers are
        # placed on a tighter inner circle so they all sit inside the
        # observer's field of view (the paper's controlled setup, where
        # U1 sees every avatar until turning away).
        import math as _math

        angle = 2 * _math.pi * index / max(2, self._n_users)
        home = Vec3(1.5 * _math.cos(angle), 0.0, 1.5 * _math.sin(angle))
        client.pose.position = home.copy()
        from ..avatar.motion import Mingle

        client.motion = Mingle(home=home)
        sampler = OvrMetricsSampler(self.sim, client)
        return UserStation(
            index=index,
            user_id=user_id,
            location=location,
            device=device_profile(device_name),
            host=host,
            ap=ap,
            uplink=uplink,
            downlink=downlink,
            sniffer=sniffer,
            netem_up=netem_up,
            netem_down=netem_down,
            client=client,
            sampler=sampler,
        )

    # ------------------------------------------------------------------
    # Experiment drivers
    # ------------------------------------------------------------------
    def start_all(
        self,
        join_at: typing.Union[float, typing.Sequence[float]] = 2.0,
        sample_metrics: bool = True,
    ) -> None:
        """Start every client; scalar or per-user join times."""
        if isinstance(join_at, (int, float)):
            join_times = [float(join_at)] * len(self.stations)
        else:
            join_times = list(join_at)
        for station, when in zip(self.stations, join_times):
            station.client.start(when, self.room_id)
            if sample_metrics:
                station.sampler.start()

    def add_peers(
        self,
        count: int,
        join_times: typing.Optional[typing.Sequence[float]] = None,
        circle_radius: float = 0.8,
    ) -> typing.List[LightweightPeer]:
        """Add lightweight crowd peers arranged on a circle."""
        import math

        start_index = len(self.peers)
        new_peers = []
        for offset in range(count):
            index = start_index + offset
            angle = 2 * math.pi * (index % 16) / 16
            position = Vec3(
                circle_radius * math.cos(angle), 0.0, circle_radius * math.sin(angle)
            )
            peer = LightweightPeer(
                self.sim,
                self.deployment,
                f"peer-{index + 1}",
                self.room_id,
                position,
            )
            when = join_times[offset] if join_times else 2.0
            peer.start(when)
            new_peers.append(peer)
        self.peers.extend(new_peers)
        return new_peers

    def add_fluid_crowd(
        self, count: int = 0, at: float = 2.0, circle_radius: float = 0.8
    ):
        """An aggregated crowd behind the same servers (hybrid fidelity).

        One :class:`~repro.scale.hybrid.FluidCrowd` process injects all
        crowd members' updates at the server — byte-identical on the
        observed stations' access links to per-peer injection, at O(1)
        simulator processes instead of O(crowd).
        """
        from ..scale.hybrid import FluidCrowd

        crowd = FluidCrowd(
            self.sim, self.deployment, self.room_id, circle_radius=circle_radius
        )
        crowd.start(at, initial_members=count)
        return crowd

    def run(self, until: float) -> float:
        """Advance the simulation to absolute time ``until``."""
        if self.psim is not None:
            return self.psim.run(until=until)
        return self.sim.run(until=until)

    def add_fence(self, time: float) -> None:
        """Align all LP domains at ``time`` (no-op when serial).

        Required for hub-scheduled events that read cross-domain state
        (chaos fault hooks, drop-count snapshots): with the fence, the
        event observes other domains exactly as-of its timestamp."""
        if self.psim is not None:
            self.psim.add_fence(time)

    def add_fence_every(self, period: float, first: typing.Optional[float] = None) -> None:
        """Recurring :meth:`add_fence` (no-op when serial) — pair with
        periodic snapshotters sampling cross-domain gauges."""
        if self.psim is not None:
            self.psim.add_fence_every(period, first=first)

    @property
    def u1(self) -> UserStation:
        return self.stations[0]

    @property
    def u2(self) -> UserStation:
        if len(self.stations) < 2:
            raise IndexError("testbed has no second user")
        return self.stations[1]


def download_drain_s(profile) -> float:
    """Settle time covering a platform's per-join download.

    Hubs re-fetches ~20 MB from the west coast on every join; at TCP
    pace over a ~75 ms RTT that takes tens of seconds, and measurement
    windows must start after it (the paper likewise excludes Hubs'
    initial data downloading from its figures).
    """
    return 1.6 * profile.control.join_download_mb


def _nearest_site_name(location: Location) -> str:
    from ..net.geo import nearest_site

    return nearest_site(location, BACKBONE_SITES).name


def vantage_locations() -> dict:
    """The paper's probing vantage points (Sec. 4.2)."""
    return {
        "northern-us": NORTH_US,
        "eastern-us": EAST_US,
        "middle-east": MIDDLE_EAST,
    }
