"""Throughput experiments: Table 3, Fig. 2, Fig. 3 (Sec. 5).

Three experiments live here:

* :func:`measure_two_user_throughput` — the Table 3 measurement: two
  Quest 2 users walk and chat in a private event; data-channel
  throughput is averaged over the steady window, per direction.
* :func:`measure_avatar_throughput` — the paper's subtraction method
  (Sec. 5.2): U1 joins mutely and the downlink T is recorded; U2 then
  joins mutely and the new downlink T' is recorded; T' - T is the
  avatar embodiment + motion traffic.
* :func:`measure_channel_timeline` — Fig. 2: per-second control/data
  channel series across the welcome page -> social event transition.
* :func:`measure_forwarding_correlation` — Fig. 3: U1's uplink vs
  U2's downlink, whose match is the evidence for direct forwarding.
"""

from __future__ import annotations

import dataclasses
import typing

from ..capture.classify import (
    CONTROL,
    DATA,
    channel_records,
    classify_by_activity,
)
from ..capture.flows import FlowTable
from ..capture.sniffer import DOWNLINK, UPLINK
from ..capture.timeseries import ThroughputSeries, average_kbps, correlation, throughput_series
from .session import Testbed, download_drain_s
from .stats import Summary, summarize

#: Seconds after joining before a steady-state window starts (lets
#: join downloads and TCP slow start settle).
SETTLE_S = 10.0


@dataclasses.dataclass
class TwoUserThroughput:
    """One platform's Table 3 row."""

    platform: str
    up_kbps: Summary
    down_kbps: Summary
    resolution: str
    avatar_kbps: typing.Optional[Summary] = None


def _channel_split(station, welcome_window, event_window):
    table = FlowTable(station.sniffer.records)
    classified = classify_by_activity(table, welcome_window, event_window)
    return (
        channel_records(classified, CONTROL),
        channel_records(classified, DATA),
    )


def _per_second_summary(records, direction, start, end) -> Summary:
    series = throughput_series(
        [r for r in records if r.direction == direction], start, end, bin_s=1.0
    )
    return summarize(series.kbps)


def measure_two_user_throughput(
    platform: str,
    duration_s: float = 40.0,
    seed: int = 0,
    join_at: float = 2.0,
) -> TwoUserThroughput:
    """Table 3: steady data-channel throughput with two users."""
    testbed = Testbed(platform, n_users=2, seed=seed)
    testbed.start_all(join_at=join_at)
    # Hubs re-downloads ~20 MB per join; keep it out of the window.
    settle = SETTLE_S + download_drain_s(testbed.profile)
    end = join_at + settle + duration_s
    testbed.run(until=end)
    start = join_at + settle
    welcome_window = (0.0, join_at)
    event_window = (start, end)
    _control, data_records = _channel_split(testbed.u1, welcome_window, event_window)
    return TwoUserThroughput(
        platform=testbed.profile.name,
        up_kbps=_per_second_summary(data_records, UPLINK, start, end),
        down_kbps=_per_second_summary(data_records, DOWNLINK, start, end),
        resolution=str(testbed.profile.app_resolution),
    )


def measure_avatar_throughput(
    platform: str,
    phase_s: float = 30.0,
    seed: int = 0,
) -> Summary:
    """Sec. 5.2 subtraction method: avatar data = T' - T (Kbps).

    U1 joins mutely at t=2; U2 joins at t=2+settle+phase. U1's
    downlink is compared across the solo and two-user phases.
    """
    testbed = Testbed(platform, n_users=2, seed=seed)
    settle = SETTLE_S + download_drain_s(testbed.profile)
    join_u1 = 2.0
    join_u2 = join_u1 + settle + phase_s
    end = join_u2 + settle + phase_s
    testbed.start_all(join_at=[join_u1, join_u2])
    testbed.run(until=end)
    welcome_window = (0.0, join_u1)
    event_window = (join_u2 + settle, end)
    _control, data_records = _channel_split(testbed.u1, welcome_window, event_window)
    solo = throughput_series(
        [r for r in data_records if r.direction == DOWNLINK],
        join_u1 + settle,
        join_u2 - 1.0,
        bin_s=1.0,
    )
    both = throughput_series(
        [r for r in data_records if r.direction == DOWNLINK],
        join_u2 + settle,
        end,
        bin_s=1.0,
    )
    t = summarize(solo.kbps)
    t_prime = summarize(both.kbps)
    return Summary(
        mean=t_prime.mean - t.mean,
        std=(t.std**2 + t_prime.std**2) ** 0.5,
        count=min(t.count, t_prime.count),
    )


def table3_row(platform: str, seed: int = 0) -> TwoUserThroughput:
    """A complete Table 3 row: totals, resolution, avatar throughput."""
    row = measure_two_user_throughput(platform, seed=seed)
    row.avatar_kbps = measure_avatar_throughput(platform, seed=seed + 1)
    return row


@dataclasses.dataclass
class ChannelTimeline:
    """Fig. 2 data: per-second channel series for one user."""

    platform: str
    times_s: typing.Sequence[float]
    control_up_kbps: typing.Sequence[float]
    control_down_kbps: typing.Sequence[float]
    data_up_kbps: typing.Sequence[float]
    data_down_kbps: typing.Sequence[float]
    event_join_at: float


def measure_channel_timeline(
    platform: str,
    welcome_s: float = 90.0,
    event_s: float = 90.0,
    seed: int = 0,
) -> ChannelTimeline:
    """Fig. 2: control vs data channel throughput over both stages."""
    total = welcome_s + event_s
    testbed = Testbed(platform, n_users=2, seed=seed)
    testbed.start_all(join_at=welcome_s)
    testbed.run(until=total)
    welcome_window = (2.0, welcome_s)
    # The classification window starts after the per-join download so a
    # download burst on the control connection does not masquerade as
    # data-channel activity.
    event_window = (
        welcome_s + SETTLE_S + download_drain_s(testbed.profile),
        total,
    )
    control_records, data_records = _channel_split(
        testbed.u1, welcome_window, event_window
    )
    series = {}
    for label, records in (("control", control_records), ("data", data_records)):
        for direction in (UPLINK, DOWNLINK):
            sub = [r for r in records if r.direction == direction]
            series[(label, direction)] = throughput_series(sub, 0.0, total, bin_s=1.0)
    reference = series[("control", UPLINK)]
    return ChannelTimeline(
        platform=testbed.profile.name,
        times_s=list(reference.times_s),
        control_up_kbps=list(series[("control", UPLINK)].kbps),
        control_down_kbps=list(series[("control", DOWNLINK)].kbps),
        data_up_kbps=list(series[("data", UPLINK)].kbps),
        data_down_kbps=list(series[("data", DOWNLINK)].kbps),
        event_join_at=welcome_s,
    )


@dataclasses.dataclass
class ForwardingEvidence:
    """Fig. 3 data: U1 uplink vs U2 downlink and their correlation."""

    platform: str
    times_s: typing.Sequence[float]
    u1_up_kbps: typing.Sequence[float]
    u2_down_kbps: typing.Sequence[float]
    corr: float
    down_up_ratio: float


def measure_forwarding_correlation(
    platform: str,
    duration_s: float = 40.0,
    seed: int = 0,
) -> ForwardingEvidence:
    """Fig. 3: does U2's downlink mirror U1's uplink?

    A high correlation plus ratio ~1 (or the stable <1 ratio of Worlds)
    is the paper's evidence that servers forward avatar data directly.
    """
    join_at = 2.0
    testbed = Testbed(platform, n_users=2, seed=seed)
    start = join_at + SETTLE_S + download_drain_s(testbed.profile)
    end = start + duration_s
    testbed.start_all(join_at=join_at)
    testbed.run(until=end)
    welcome_window = (0.0, join_at)
    event_window = (start, end)
    _c1, u1_data = _channel_split(testbed.u1, welcome_window, event_window)
    _c2, u2_data = _channel_split(testbed.u2, welcome_window, event_window)
    u1_up = throughput_series(
        [r for r in u1_data if r.direction == UPLINK], start, end, bin_s=1.0
    )
    u2_down = throughput_series(
        [r for r in u2_data if r.direction == DOWNLINK], start, end, bin_s=1.0
    )
    up_mean = max(u1_up.kbps.mean(), 1e-9)
    return ForwardingEvidence(
        platform=testbed.profile.name,
        times_s=list(u1_up.times_s),
        u1_up_kbps=list(u1_up.kbps),
        u2_down_kbps=list(u2_down.kbps),
        corr=correlation(u1_up.kbps, u2_down.kbps),
        down_up_ratio=float(u2_down.kbps.mean() / up_mean),
    )
