"""Plain-text rendering of tables and figure series.

Benchmarks print the same rows the paper's tables report and compact
textual versions of its figures, so a terminal diff against the paper
is possible without a plotting stack.
"""

from __future__ import annotations

import typing

SPARK_LEVELS = " .:-=+*#%@"


def render_table(
    headers: typing.Sequence[str],
    rows: typing.Sequence[typing.Sequence],
    title: str = "",
) -> str:
    """Align ``rows`` under ``headers`` with column padding."""
    table = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in table:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in table:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def sparkline(values: typing.Sequence[float], width: int = 60) -> str:
    """A compact character plot of a series."""
    data = list(values)
    if not data:
        return ""
    if len(data) > width:
        # Downsample by averaging fixed-size buckets.
        bucket = len(data) / width
        data = [
            sum(data[int(i * bucket) : max(int(i * bucket) + 1, int((i + 1) * bucket))])
            / max(1, len(data[int(i * bucket) : max(int(i * bucket) + 1, int((i + 1) * bucket))]))
            for i in range(width)
        ]
    top = max(data)
    if top <= 0:
        return SPARK_LEVELS[0] * len(data)
    out = []
    for value in data:
        level = int(round((len(SPARK_LEVELS) - 1) * max(0.0, value) / top))
        out.append(SPARK_LEVELS[level])
    return "".join(out)


def render_series(
    name: str, values: typing.Sequence[float], unit: str = "", width: int = 60
) -> str:
    """One labelled sparkline with min/mean/max annotations."""
    data = list(values)
    if not data:
        return f"{name}: (no data)"
    mean = sum(data) / len(data)
    return (
        f"{name:<28s} |{sparkline(data, width)}| "
        f"min={min(data):.1f} mean={mean:.1f} max={max(data):.1f} {unit}"
    )
