"""End-to-end latency measurement and breakdown (Sec. 7).

The paper's method, reproduced step by step:

1. U1 performs a distinct action (moving touching index fingers apart);
   screen recordings on both headsets, captured at the running FPS,
   give the last frame before the action on U1 and the first frame
   reflecting it on U2. Quest 2 clocks are synchronized against the
   WiFi AP at millisecond precision (ADB ``$EPOCHREALTIME`` + RTT
   compensation) — we model the residual sync error and the frame-rate
   capture quantization explicitly.
2. The breakdown recovers sender / server / receiver components from
   packet timestamps in the AP traces (feasible because the data rate
   is low and transfers sparse) plus ping RTTs to each user's server.
"""

from __future__ import annotations

import dataclasses
import typing

from ..capture.sniffer import DOWNLINK, UPLINK
from ..net.ping import ProbeTool
from .session import Testbed, download_drain_s
from .stats import Summary, summarize

#: Residual clock-sync error after the AP-based synchronization (ms).
CLOCK_SYNC_STD_MS = 1.5
#: Ignore tiny packets (TCP ACKs, RTCP reports) when locating the
#: action-bearing packet in a trace; AltspaceVR's avatar updates are
#: only 92 B on the wire, so the bar sits just below that.
MIN_ACTION_PACKET_BYTES = 85
ACTION_INTERVAL_S = 2.0
SETTLE_S = 12.0


@dataclasses.dataclass
class LatencyBreakdown:
    """One platform's Table 4 row (all values in milliseconds)."""

    platform: str
    n_users: int
    e2e: Summary
    sender: Summary
    receiver: Summary
    server: Summary
    actions_measured: int


def measure_latency(
    platform: typing.Union[str, object],
    n_actions: int = 20,
    n_users: int = 2,
    seed: int = 0,
    breakdown: bool = True,
) -> LatencyBreakdown:
    """Measure E2E latency (and its breakdown) between U1 and U2.

    Extra users beyond two join as lightweight crowd peers, matching
    the Fig. 11 scaling experiments. The paper notes the breakdown
    becomes infeasible with many users (packet intervals shrink); here
    the trace is still sparse enough per sender to keep reporting it.
    """
    testbed = Testbed(platform, n_users=2, seed=seed)
    join_at = 2.0
    testbed.start_all(join_at=join_at)
    if n_users > 2:
        testbed.add_peers(n_users - 2, join_times=[join_at] * (n_users - 2))
    # Let the per-join download drain before measuring (Hubs re-fetches
    # ~20 MB at every join; actions issued mid-download would measure
    # TCP head-of-line blocking, not steady-state latency).
    first_action = (
        join_at + SETTLE_S + download_drain_s(testbed.profile)
    )
    for k in range(n_actions):
        testbed.u1.client.perform_action(k, first_action + k * ACTION_INTERVAL_S)
    end = first_action + n_actions * ACTION_INTERVAL_S + 3.0
    testbed.run(until=end)

    rng = testbed.sim.rng("latency-measurement")
    frame_s = testbed.u2.device.frame_interval_s

    # Network one-way transit estimate from AP pings (the paper's
    # breakdown method).
    up_leg = _half_rtt(testbed, testbed.u1)
    down_leg = _half_rtt(testbed, testbed.u2)

    e2e_ms, sender_ms, receiver_ms, server_ms = [], [], [], []
    u1_up = [
        r
        for r in testbed.u1.sniffer.records
        if r.direction == UPLINK and r.size >= MIN_ACTION_PACKET_BYTES
    ]
    u2_down = [r for r in testbed.u2.sniffer.records if r.direction == DOWNLINK]
    for k in range(n_actions):
        sent = testbed.u1.client.sent_actions.get(k)
        shown = testbed.u2.client.action_displays.get(k)
        if sent is None or shown is None:
            continue
        t0 = sent["t0"]
        # The action frame on U1's recording pins the send instant; the
        # adjacent uplink packet in the AP trace is the action packet.
        t_up = _first_record_after(u1_up, sent["sent_at"] - 1e-9)
        # Likewise on U2: the action packet is the downlink packet just
        # before the update reached the app (wifi transit ~1 ms).
        t_down = _last_record_before(u2_down, shown["arrived_at"] + 1e-9)
        if t_up is None or t_down is None:
            continue
        # Frame-capture method: receiver display time, quantized by the
        # recording frame rate, minus the action time, plus clock-sync
        # residuals on both devices.
        capture_quantization = rng.uniform(0.0, frame_s)
        sync_error = rng.gauss(0.0, CLOCK_SYNC_STD_MS / 1000.0) - rng.gauss(
            0.0, CLOCK_SYNC_STD_MS / 1000.0
        )
        e2e = (shown["display_at"] + capture_quantization + sync_error) - t0
        e2e_ms.append(e2e * 1000.0)
        sender_ms.append((t_up - t0) * 1000.0)
        server_ms.append(((t_down - t_up) - up_leg - down_leg) * 1000.0)
        receiver_ms.append((shown["display_at"] - t_down) * 1000.0)

    return LatencyBreakdown(
        platform=testbed.profile.name,
        n_users=n_users,
        e2e=summarize(e2e_ms),
        sender=summarize(sender_ms),
        receiver=summarize(receiver_ms),
        server=summarize(server_ms),
        actions_measured=len(e2e_ms),
    )


def measure_latency_scaling(
    platform: typing.Union[str, object],
    user_counts: typing.Sequence[int] = (2, 3, 4, 5, 6, 7),
    n_actions: int = 15,
    seed: int = 0,
) -> typing.List[LatencyBreakdown]:
    """Fig. 11: E2E latency as more users join the same event."""
    results = []
    for index, count in enumerate(user_counts):
        results.append(
            measure_latency(
                platform,
                n_actions=n_actions,
                n_users=count,
                seed=seed + index,
            )
        )
    return results


def _half_rtt(testbed: Testbed, station) -> float:
    """One-way delay estimate to the station's data server (seconds)."""
    endpoint = testbed.deployment.data_endpoint_for(station.host, station.index)
    sim = testbed.sim
    tool = ProbeTool(station.ap)
    process = sim.spawn(tool.ping_process(endpoint.ip, count=5))
    sim.run(until=sim.now + 8.0)
    result = process.value
    if result is None or not result.reachable:
        return 0.0
    return result.avg_rtt_ms / 2000.0


def _first_record_after(records, t: float) -> typing.Optional[float]:
    for record in records:
        if record.time >= t:
            return record.time
    return None


def _last_record_before(records, t: float) -> typing.Optional[float]:
    best = None
    for record in records:
        if record.time <= t:
            best = record.time
        else:
            break
    return best
