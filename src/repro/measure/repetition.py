"""Repeated experiments: cross-run aggregation (Sec. 3.2).

The paper reports "the averaged measurement results from more than 20
experiments". A single simulation run already averages within its
window; this module repeats whole experiments across seeds and
aggregates any numeric field of their results, yielding the mean,
standard deviation, and 95% confidence interval *across runs* — the
quantity the paper's tables actually print.
"""

from __future__ import annotations

import dataclasses
import typing

from .stats import Summary, summarize


@dataclasses.dataclass
class RepeatedResult:
    """Per-field cross-run aggregates plus the raw per-run results."""

    runs: typing.List[typing.Any]
    aggregates: typing.Dict[str, Summary]

    def __getitem__(self, field: str) -> Summary:
        return self.aggregates[field]

    @property
    def n_runs(self) -> int:
        return len(self.runs)


def repeat(
    experiment: typing.Callable[..., typing.Any],
    n_runs: int = 20,
    base_seed: int = 0,
    fields: typing.Optional[typing.Sequence[str]] = None,
    **kwargs,
) -> RepeatedResult:
    """Run ``experiment(seed=...)`` ``n_runs`` times and aggregate.

    ``fields`` selects which attributes of each run's result to
    aggregate; dotted paths reach into nested objects, and a field
    resolving to a :class:`Summary` contributes its mean. With
    ``fields=None`` every numeric/Summary attribute of the first
    result is aggregated.
    """
    if n_runs < 1:
        raise ValueError(f"n_runs must be >= 1, got {n_runs}")
    runs = [
        experiment(seed=base_seed + index, **kwargs) for index in range(n_runs)
    ]
    if fields is None:
        fields = _numeric_fields(runs[0])
    aggregates = {}
    for field in fields:
        values = [_resolve(run, field) for run in runs]
        aggregates[field] = summarize(values)
    return RepeatedResult(runs=runs, aggregates=aggregates)


def _numeric_fields(result: typing.Any) -> typing.List[str]:
    """Names of numeric or Summary-valued attributes of ``result``."""
    fields = []
    if dataclasses.is_dataclass(result):
        names = [f.name for f in dataclasses.fields(result)]
    else:
        names = [n for n in vars(result) if not n.startswith("_")]
    for name in names:
        value = getattr(result, name)
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float, Summary)):
            fields.append(name)
    return fields


def _resolve(result: typing.Any, dotted: str) -> float:
    value = result
    for part in dotted.split("."):
        value = getattr(value, part)
    if isinstance(value, Summary):
        return value.mean
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"field {dotted!r} is not numeric: {value!r}")
    return float(value)
