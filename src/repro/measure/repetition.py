"""Repeated experiments: cross-run aggregation (Sec. 3.2).

The paper reports "the averaged measurement results from more than 20
experiments". A single simulation run already averages within its
window; this module repeats whole experiments across seeds and
aggregates any numeric field of their results, yielding the mean,
standard deviation, and 95% confidence interval *across runs* — the
quantity the paper's tables actually print.

Repetition can run serially (the default) or fan the per-seed runs out
over worker processes via :mod:`repro.runner` (``parallel=True`` /
``max_workers=...``).  The parallel path uses exactly the same seeds
(``base_seed + index``) and the same aggregation, so it provably
returns the same :class:`RepeatedResult` the serial loop would — only
the wall-clock time changes.
"""

from __future__ import annotations

import dataclasses
import typing

from .stats import Summary, summarize


@dataclasses.dataclass
class RepeatedResult:
    """Per-field cross-run aggregates plus the raw per-run results."""

    runs: typing.List[typing.Any]
    aggregates: typing.Dict[str, Summary]

    def __getitem__(self, field: str) -> Summary:
        return self.aggregates[field]

    @property
    def n_runs(self) -> int:
        return len(self.runs)


def repeat(
    experiment: typing.Union[typing.Callable[..., typing.Any], str],
    n_runs: int = 20,
    base_seed: int = 0,
    fields: typing.Optional[typing.Sequence[str]] = None,
    parallel: bool = False,
    max_workers: typing.Optional[int] = None,
    cache_dir: typing.Optional[str] = None,
    **kwargs,
) -> RepeatedResult:
    """Run ``experiment(seed=...)`` ``n_runs`` times and aggregate.

    ``experiment`` is a callable or a name from the experiment
    registry.  ``fields`` selects which attributes of each run's
    result to aggregate; dotted paths reach into nested objects, and a
    field resolving to a :class:`Summary` contributes its mean. With
    ``fields=None`` every numeric/Summary attribute of the first
    result is aggregated.

    With ``parallel=True`` (or an explicit ``max_workers``) the runs
    execute on a process pool through :func:`repro.runner.run_campaign`
    with identical per-run seeds, and optionally reuse the on-disk
    campaign cache (``cache_dir``).
    """
    if n_runs < 1:
        raise ValueError(f"n_runs must be >= 1, got {n_runs}")
    if parallel or max_workers is not None:
        runs = _run_parallel(experiment, n_runs, base_seed, max_workers, cache_dir, kwargs)
    else:
        runner = _resolve(experiment)
        runs = [runner(seed=base_seed + index, **kwargs) for index in range(n_runs)]
    if fields is None:
        fields = _numeric_fields(runs[0])
        if not fields:
            raise ValueError(
                f"result of type {type(runs[0]).__name__} has no numeric or "
                f"Summary fields to aggregate; pass fields=... explicitly"
            )
    elif not fields:
        raise ValueError("fields must be None (auto-detect) or non-empty")
    aggregates = {}
    for field in fields:
        values = [_resolve_field(run, field) for run in runs]
        if len(values) == 1:
            # A single run has no cross-run spread: report a degenerate
            # summary explicitly (std 0, CI width 0) rather than leaning
            # on summarize()'s single-sample branch.
            aggregates[field] = Summary(mean=float(values[0]), std=0.0, count=1)
        else:
            aggregates[field] = summarize(values)
    return RepeatedResult(runs=runs, aggregates=aggregates)


def _resolve(
    experiment: typing.Union[typing.Callable[..., typing.Any], str],
) -> typing.Callable[..., typing.Any]:
    if callable(experiment):
        return experiment
    from .experiment import get_experiment

    return get_experiment(experiment).run


def _run_parallel(
    experiment: typing.Union[typing.Callable[..., typing.Any], str],
    n_runs: int,
    base_seed: int,
    max_workers: typing.Optional[int],
    cache_dir: typing.Optional[str],
    kwargs: typing.Mapping[str, typing.Any],
) -> typing.List[typing.Any]:
    # Imported here: repro.runner imports the experiment registry, which
    # lives beside this module.
    from ..runner import TaskSpec, run_campaign

    tasks = [
        TaskSpec.create(experiment, kwargs, seed=base_seed + index)
        for index in range(n_runs)
    ]
    campaign = run_campaign(
        tasks,
        parallel=True,
        max_workers=max_workers,
        cache_dir=cache_dir,
        use_cache=cache_dir is not None,
    )
    if not campaign.ok:
        first = campaign.failures[0]
        raise RuntimeError(
            f"{campaign.summary.failed}/{n_runs} repeated runs failed; "
            f"first failure ({first.spec.task_id}): {first.error}"
        )
    return campaign.values()


def _numeric_fields(result: typing.Any) -> typing.List[str]:
    """Names of numeric or Summary-valued attributes of ``result``."""
    fields = []
    if dataclasses.is_dataclass(result):
        names = [f.name for f in dataclasses.fields(result)]
    elif hasattr(result, "__dict__"):
        names = [n for n in vars(result) if not n.startswith("_")]
    else:
        return []
    for name in names:
        value = getattr(result, name)
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float, Summary)):
            fields.append(name)
    return fields


def _resolve_field(result: typing.Any, dotted: str) -> float:
    value = result
    for part in dotted.split("."):
        value = getattr(value, part)
    if isinstance(value, Summary):
        return value.mean
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"field {dotted!r} is not numeric: {value!r}")
    return float(value)
