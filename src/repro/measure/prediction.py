"""Viewport filtering trade-off: width vs prediction vs missing content.

Sec. 6.1 notes the two sides of viewport-adaptive delivery: it saves
bandwidth, but "when the prediction is not accurate, this optimization
may lead to missing content". This experiment quantifies the trade-off
with a continuously-turning user (the hardest case):

* *missing-content fraction* — share of time a peer avatar is inside
  the headset's actual FoV but its data is stale (no update within the
  freshness bound),
* *savings fraction* — share of avatar updates withheld by the server.

Three compensators are compared: the bare headset FoV, AltspaceVR's
widened 150-degree cone, and a narrow cone aimed by yaw-rate
prediction.
"""

from __future__ import annotations

import dataclasses
import typing

from ..avatar.motion import Spin, Stand
from ..avatar.pose import Vec3
from ..avatar.viewport import HEADSET_FOV_DEG, HEADSET_VIEWPORT
from .session import Testbed

#: An avatar whose last update is older than this renders stale.
FRESHNESS_S = 0.3
SAMPLE_PERIOD_S = 0.05


@dataclasses.dataclass
class ViewportTradeoffPoint:
    """One configuration's missing-content vs savings outcome."""

    viewport_deg: float
    prediction_horizon_s: float
    missing_fraction: float
    savings_fraction: float
    label: str = ""


def run_viewport_tradeoff(
    configurations: typing.Sequence[tuple] = (
        (HEADSET_FOV_DEG, 0.0),
        (150.0, 0.0),
        (HEADSET_FOV_DEG, 0.3),
    ),
    spin_rate_deg_s: float = 90.0,
    duration_s: float = 40.0,
    seed: int = 0,
) -> typing.List[ViewportTradeoffPoint]:
    """Measure each (viewport width, prediction horizon) configuration."""
    import dataclasses as dc

    from ..platforms.profiles import get_profile

    points = []
    for width, horizon in configurations:
        base = get_profile("altspacevr")
        data = dc.replace(
            base.data,
            server_viewport_deg=width,
            viewport_prediction_horizon_s=horizon,
        )
        profile = base.replace(data=data)
        testbed = Testbed(profile, n_users=2, seed=seed)
        u1, u2 = testbed.u1, testbed.u2
        u1.client.pose.position = Vec3(0.0, 0.0, 0.0)
        u1.client.motion = Spin(rate_deg_s=spin_rate_deg_s)
        u2.client.pose.position = Vec3(0.0, 0.0, 3.0)
        u2.client.motion = Stand(sway_deg=0.5)
        testbed.start_all(join_at=2.0)

        samples = {"visible": 0, "missing": 0}

        def sample() -> None:
            if u1.client.stage != "event":
                testbed.sim.schedule(SAMPLE_PERIOD_S, sample)
                return
            state = u1.client.remote_avatars.get("u2")
            in_fov = HEADSET_VIEWPORT.contains(
                u1.client.pose, u2.client.pose.position
            )
            if in_fov:
                samples["visible"] += 1
                last = state.get("last_time", -10.0) if state else -10.0
                if testbed.sim.now - last > FRESHNESS_S:
                    samples["missing"] += 1
            testbed.sim.schedule(SAMPLE_PERIOD_S, sample)

        testbed.sim.schedule(6.0, sample)
        testbed.run(until=6.0 + duration_s)
        server = next(iter(testbed.deployment.data_servers.values()))
        missing = (
            samples["missing"] / samples["visible"] if samples["visible"] else 0.0
        )
        points.append(
            ViewportTradeoffPoint(
                viewport_deg=width,
                prediction_horizon_s=horizon,
                missing_fraction=missing,
                savings_fraction=server.savings_fraction(),
                label=_label(width, horizon),
            )
        )
    return points


def _label(width: float, horizon: float) -> str:
    if horizon > 0:
        return f"{width:.0f} deg + {horizon * 1000:.0f} ms prediction"
    if width <= HEADSET_FOV_DEG:
        return f"{width:.0f} deg (bare FoV)"
    return f"{width:.0f} deg (widened cone)"
