"""Scalability experiments (Sec. 6): Figs. 6, 7, 8, 9 and the
viewport-width detection of Sec. 6.1.

* :func:`run_join_timeline` — Fig. 6: users join one by one at 50 s
  intervals; U1 turns 180 degrees at 250 s. Experiment 2 starts U1
  facing a corner instead (AltspaceVR's viewport optimization shows as
  a throughput cliff in both variants).
* :func:`run_user_sweep` — Figs. 7/8: downlink throughput, FPS, and
  CPU/GPU/memory at 1-15 users (controlled up to 5, public events
  beyond, as in the paper — crowd members are lightweight peers).
* :func:`run_hubs_large_scale` — Fig. 9: up to 28 users on the
  authors' private Hubs server.
* :func:`detect_viewport_width` — Sec. 6.1: snap-turn U1 in
  22.5-degree steps and find where U2's data starts being delivered.
"""

from __future__ import annotations

import dataclasses
import math
import typing

from ..avatar.motion import SnapTurnSequence, Stand, TimedTurn
from ..avatar.pose import Vec3
from ..avatar.viewport import TURN_STEP_DEG
from ..capture.sniffer import DOWNLINK, UPLINK
from .session import Testbed, download_drain_s
from .stats import Summary, summarize

SETTLE_S = 8.0


# ----------------------------------------------------------------------
# Fig. 6 — join timeline with a 180-degree turn at 250 s
# ----------------------------------------------------------------------
@dataclasses.dataclass
class JoinTimeline:
    """Per-second uplink/downlink series for U1 during the Fig. 6 run."""

    platform: str
    times_s: typing.List[float]
    up_kbps: typing.List[float]
    down_kbps: typing.List[float]
    join_times: typing.List[float]
    turn_at: float
    #: Mean downlink in the windows the figure highlights.
    down_before_turn_kbps: float
    down_after_turn_kbps: float


def run_join_timeline(
    platform: typing.Union[str, object],
    join_interval_s: float = 50.0,
    n_joiners: int = 4,
    turn_at: float = 250.0,
    duration_s: float = 300.0,
    facing_center_first: bool = True,
    seed: int = 0,
) -> JoinTimeline:
    """Fig. 6 (and 6(f) with ``facing_center_first=False``)."""
    testbed = Testbed(platform, n_users=1, seed=seed, retain_records=False)
    u1 = testbed.u1
    # U1 stands at the edge; joiners cluster at the centre.
    u1.client.pose.position = Vec3(3.0, 0.0, 0.0)
    toward_center = -90.0  # bearing from (3,0,0) to the origin
    initial = toward_center if facing_center_first else toward_center + 180.0
    u1.client.motion = TimedTurn(initial_yaw=initial, turn_at=turn_at, turn_deg=180.0)
    # Start the reported series after U1's join download drains — the
    # paper omits Hubs' initial data downloading from Fig. 6 too.  The
    # bins accumulate as packets are captured; a five-minute join
    # timeline never holds per-packet records.
    series_start = 4.0 + download_drain_s(testbed.profile)
    up_bins = u1.sniffer.stream_bins(
        series_start, duration_s, bin_s=1.0, direction=UPLINK
    )
    down_bins = u1.sniffer.stream_bins(
        series_start, duration_s, bin_s=1.0, direction=DOWNLINK
    )
    testbed.start_all(join_at=2.0)
    join_times = [join_interval_s * (k + 1) for k in range(n_joiners)]
    testbed.add_peers(n_joiners, join_times=join_times, circle_radius=0.5)
    testbed.run(until=duration_s)

    up = up_bins.series()
    down = down_bins.series()
    return JoinTimeline(
        platform=testbed.profile.name,
        times_s=list(up.times_s),
        up_kbps=list(up.kbps),
        down_kbps=list(down.kbps),
        join_times=join_times,
        turn_at=turn_at,
        down_before_turn_kbps=down.mean_kbps(turn_at - 30.0, turn_at - 2.0),
        down_after_turn_kbps=down.mean_kbps(turn_at + 10.0, duration_s - 2.0),
    )


# ----------------------------------------------------------------------
# Figs. 7/8 — user sweep
# ----------------------------------------------------------------------
@dataclasses.dataclass
class ScalabilityPoint:
    """One user-count point of the Fig. 7/8 sweep."""

    n_users: int
    down_kbps: Summary
    up_kbps: Summary
    fps: Summary
    cpu_pct: Summary
    gpu_pct: Summary
    memory_mb: Summary


def run_user_sweep(
    platform: typing.Union[str, object],
    user_counts: typing.Sequence[int] = (1, 2, 3, 4, 5, 7, 10, 12, 15),
    window_s: float = 20.0,
    seed: int = 0,
    lp_domains: int = 1,
) -> typing.List[ScalabilityPoint]:
    """Figs. 7/8: measure U1 as the event population grows.

    Each user-count point is an independent testbed build with its own
    seed, so the sweep runs as a campaign: one task per point, executed
    on the :mod:`repro.runner` process pool when safe (top-level
    process, no active obs collector) and serially otherwise.  Results
    are identical either way — every point owns its seed.

    ``lp_domains > 1`` runs each point on the space-parallel kernel
    (:mod:`repro.simcore.lp`); the sweep results are byte-identical to
    the serial ones for any domain count.
    """
    import multiprocessing

    from ..obs.context import active_collector
    from ..runner import TaskSpec, run_campaign

    if not isinstance(platform, str):
        # Profile objects are not worth shipping to workers; keep the
        # rare ad-hoc-profile path serial and allocation-free.
        return [
            _sweep_point(
                platform, count, window_s, seed=seed + index,
                lp_domains=lp_domains,
            )
            for index, count in enumerate(user_counts)
        ]
    specs = [
        TaskSpec.create(
            _sweep_point,
            {
                "platform": platform,
                "n_users": count,
                "window_s": window_s,
                "lp_domains": lp_domains,
            },
            seed=seed + index,
        )
        for index, count in enumerate(user_counts)
    ]
    parallel = (
        len(specs) > 1
        and multiprocessing.parent_process() is None
        and active_collector() is None
    )
    campaign = run_campaign(
        specs, parallel=parallel, max_retries=0, use_cache=False, cache_dir=None
    )
    if campaign.failures:
        failure = campaign.failures[0]
        raise RuntimeError(
            f"sweep point {failure.spec.task_id} failed: {failure.error}"
        )
    return campaign.values()


def _sweep_point(
    platform, n_users: int, window_s: float, seed: int, lp_domains: int = 1
) -> ScalabilityPoint:
    testbed = Testbed(
        platform, n_users=1, seed=seed, retain_records=False,
        lp_domains=lp_domains,
    )
    join_at = 2.0
    download_drain = download_drain_s(testbed.profile)
    start = join_at + SETTLE_S + download_drain
    end = start + window_s
    u1 = testbed.u1
    down_bins = u1.sniffer.stream_bins(start, end, 1.0, direction=DOWNLINK)
    up_bins = u1.sniffer.stream_bins(start, end, 1.0, direction=UPLINK)
    testbed.start_all(join_at=join_at)
    if n_users > 1:
        testbed.add_peers(n_users - 1, join_times=[join_at] * (n_users - 1))
    testbed.run(until=end)
    down = down_bins.series()
    up = up_bins.series()
    window = u1.sampler.window(start, end)
    return ScalabilityPoint(
        n_users=n_users,
        down_kbps=summarize(down.kbps),
        up_kbps=summarize(up.kbps),
        fps=summarize([s.fps for s in window]),
        cpu_pct=summarize([s.cpu_pct for s in window]),
        gpu_pct=summarize([s.gpu_pct for s in window]),
        memory_mb=summarize([s.memory_mb for s in window]),
    )


def run_hubs_large_scale(
    user_counts: typing.Sequence[int] = (15, 20, 25, 28),
    window_s: float = 20.0,
    seed: int = 0,
    lp_domains: int = 1,
) -> typing.List[ScalabilityPoint]:
    """Fig. 9: the large-scale event on the private Hubs server."""
    return run_user_sweep(
        "hubs-private",
        user_counts=user_counts,
        window_s=window_s,
        seed=seed,
        lp_domains=lp_domains,
    )


# ----------------------------------------------------------------------
# Sec. 6.1 — viewport-width detection
# ----------------------------------------------------------------------
@dataclasses.dataclass
class ViewportDetection:
    """Result of the snap-turn probing of a server-side viewport."""

    platform: str
    step_deg: float
    step_throughput_kbps: typing.List[float]  # downlink per snap position
    onset_step: typing.Optional[int]  # first step where avatar data flows
    estimated_width_deg: typing.Optional[float]
    max_savings_fraction: typing.Optional[float]


def detect_viewport_width(
    platform: typing.Union[str, object] = "altspacevr",
    step_hold_s: float = 10.0,
    seed: int = 0,
) -> ViewportDetection:
    """Sec. 6.1: turn U1's back on U2, then snap-turn toward it.

    The first snap position at which U1's downlink carries avatar data
    brackets the server viewport's half-width; the paper derives
    ~150 degrees for AltspaceVR this way.
    """
    testbed = Testbed(platform, n_users=2, seed=seed, retain_records=False)
    u1, u2 = testbed.u1, testbed.u2
    # U2 stands still 4 m in front of where U1 initially faces *away*.
    u1.client.pose.position = Vec3(0.0, 0.0, 0.0)
    u2.client.pose.position = Vec3(0.0, 0.0, 4.0)
    u2.client.motion = Stand(sway_deg=0.0)
    start_turning = 2.0 + SETTLE_S
    # Facing 180 means U2 (at +z) sits exactly behind U1.
    turner = SnapTurnSequence(
        initial_yaw=180.0, step_interval_s=step_hold_s, start_at=start_turning
    )
    u1.client.motion = turner
    n_steps = int(360.0 / TURN_STEP_DEG / 2) + 1  # half-turn plus margin
    end = start_turning + n_steps * step_hold_s
    # One single-bin accumulator per held snap position (skipping the
    # first 1.5 s after each snap to let in-flight data settle) —
    # average downlink per window, streamed instead of retained.
    windows = []
    for step in range(n_steps):
        window_start = start_turning + step * step_hold_s + 1.5
        window_end = start_turning + (step + 1) * step_hold_s
        windows.append(
            u1.sniffer.stream_bins(
                window_start,
                window_end,
                bin_s=window_end - window_start,
                direction=DOWNLINK,
            )
        )
    testbed.start_all(join_at=2.0)
    testbed.run(until=end)

    overhead_kbps = testbed.profile.data.overhead_down_kbps
    per_step = [window.average_kbps() for window in windows]
    onset = None
    for step, kbps in enumerate(per_step):
        if kbps > overhead_kbps + 2.0:
            onset = step
            break
    if onset is None or onset == 0:
        width = 360.0 if onset == 0 else None
        savings = 0.0 if onset == 0 else None
    else:
        # After `onset` snaps U2's bearing is 180 - onset*22.5; the edge
        # lies between that and the previous position — take the middle.
        bearing_after = 180.0 - onset * TURN_STEP_DEG
        half_width = bearing_after + TURN_STEP_DEG / 2
        width = 2 * half_width
        savings = 1.0 - width / 360.0
    return ViewportDetection(
        platform=testbed.profile.name,
        step_deg=TURN_STEP_DEG,
        step_throughput_kbps=per_step,
        onset_step=onset,
        estimated_width_deg=width,
        max_savings_fraction=savings,
    )
