"""Public-event workloads: crowd churn for in-the-wild measurements.

The paper's Sec. 6.2 experiments join *public events* with 7-15 users
over which the authors have no control — attendees come and go. This
module generates that churn: a target population with Poisson-ish
arrivals and departures, and a measurement that relates the observed
user's downlink to the *current* occupancy rather than a fixed count.
"""

from __future__ import annotations

import dataclasses
import typing

from ..capture.sniffer import DOWNLINK
from .session import Testbed, download_drain_s
from .stats import LinearFit, linear_fit


@dataclasses.dataclass
class OccupancySample:
    """Room occupancy and the observed downlink for one time bin."""

    time_s: float
    occupants: int
    down_kbps: float


@dataclasses.dataclass
class PublicEventResult:
    """Outcome of a churning public-event measurement."""

    platform: str
    samples: typing.List[OccupancySample]
    fit: LinearFit  # downlink ~ occupants

    @property
    def per_user_kbps(self) -> float:
        """Estimated per-avatar downlink cost from the churn data."""
        return self.fit.slope

    @property
    def tracks_occupancy(self) -> bool:
        """Whether downlink follows the live population (R^2 bound)."""
        return self.fit.r2 > 0.8


class CrowdChurn:
    """Drives a fluid crowd in and out of a testbed's room.

    The crowd rides :meth:`Testbed.add_fluid_crowd` — one aggregation
    process injecting every member's updates at the server — so a
    churning public event costs the simulator O(1) processes however
    large the room gets, while the observed station's traffic stays
    byte-identical to per-peer injection.
    """

    def __init__(
        self,
        testbed: Testbed,
        target_users: int,
        churn_interval_s: float = 15.0,
        churn_probability: float = 0.5,
    ) -> None:
        if target_users < 2:
            raise ValueError("target_users must be >= 2 (observer + crowd)")
        self.testbed = testbed
        self.target_users = target_users
        self.churn_interval_s = churn_interval_s
        self.churn_probability = churn_probability
        self._rng = testbed.sim.rng("crowd-churn")
        self.crowd = None

    def start(self, at: float) -> None:
        # Initial crowd: target minus the observed user.
        self.crowd = self.testbed.add_fluid_crowd(
            count=self.target_users - 1, at=at
        )
        self.testbed.sim.schedule_at(at + self.churn_interval_s, self._churn)

    def occupancy(self) -> int:
        crowd_size = self.crowd.size if self.crowd is not None else 0
        return 1 + crowd_size

    def _churn(self) -> None:
        sim = self.testbed.sim
        if self._rng.random() < self.churn_probability:
            if self._rng.random() < 0.5 and self.crowd.size > 2:
                # A random attendee leaves.
                self.crowd.leave(self._rng.randrange(self.crowd.size))
            elif self.occupancy() < self.target_users + 3:
                # A new attendee arrives.
                self.crowd.join(1)
        sim.schedule(self.churn_interval_s, self._churn)


def run_public_event(
    platform: str,
    target_users: int = 10,
    duration_s: float = 240.0,
    bin_s: float = 5.0,
    seed: int = 0,
) -> PublicEventResult:
    """Attend a churning public event and regress downlink on occupancy."""
    testbed = Testbed(platform, n_users=1, seed=seed, retain_records=False)
    join_at = 2.0
    start = join_at + 10.0 + download_drain_s(testbed.profile)
    end = start + duration_s
    down_bins = testbed.u1.sniffer.stream_bins(
        start, end, bin_s=bin_s, direction=DOWNLINK
    )
    testbed.start_all(join_at=join_at)
    churn = CrowdChurn(testbed, target_users)
    churn.start(join_at)

    occupancy_log: typing.List[tuple] = []

    def record_occupancy() -> None:
        occupancy_log.append((testbed.sim.now, churn.occupancy()))
        testbed.sim.schedule(bin_s, record_occupancy)

    testbed.sim.schedule_at(start + bin_s / 2, record_occupancy)
    testbed.run(until=end)

    series = down_bins.series()
    samples = []
    for (when, occupants), kbps in zip(occupancy_log, series.kbps):
        samples.append(OccupancySample(when, occupants, float(kbps)))
    fit = linear_fit(
        [s.occupants for s in samples], [s.down_kbps for s in samples]
    )
    return PublicEventResult(
        platform=testbed.profile.name, samples=samples, fit=fit
    )
