"""AutoDriver-style scripted input playback (Sec. 9).

The paper's future-work section builds on Oculus's AutoDriver tool,
which "enables the test of VR applications by automatically playing
back pre-defined inputs", to scale experiments beyond manual operation.
This module provides the equivalent for simulated clients: an
:class:`InputScript` of timed input events, JSON-serializable so
scripts can be shared between experiment sites, and an
:class:`AutoDriver` that replays one onto a :class:`PlatformClient`.
"""

from __future__ import annotations

import dataclasses
import json
import typing

from ..avatar.motion import FacePoint, Spin, Stand, Wander
from ..avatar.pose import Vec3

#: Input kinds AutoDriver can replay.
EVENT_KINDS = (
    "teleport",  # value: [x, z]
    "turn",  # value: degrees
    "face",  # value: [x, z] point to face
    "wander",  # value: room radius
    "stand",  # value: null
    "spin",  # value: degrees/second
    "gesture",  # value: gesture name
    "action",  # value: action id
    "game",  # value: true/false
    "mute",  # value: true/false
)


@dataclasses.dataclass(frozen=True)
class InputEvent:
    """One timed input: when, what, and its parameter."""

    at: float
    kind: str
    value: typing.Any = None

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"event time must be >= 0, got {self.at}")
        if self.kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown input kind {self.kind!r}; choose from {EVENT_KINDS}"
            )


@dataclasses.dataclass
class InputScript:
    """A replayable sequence of input events."""

    name: str
    events: typing.List[InputEvent] = dataclasses.field(default_factory=list)

    def add(self, at: float, kind: str, value=None) -> "InputScript":
        self.events.append(InputEvent(at, kind, value))
        return self

    def sorted_events(self) -> typing.List[InputEvent]:
        return sorted(self.events, key=lambda e: e.at)

    @property
    def duration(self) -> float:
        return max((e.at for e in self.events), default=0.0)

    # ------------------------------------------------------------------
    # Serialization (scripts are shared between experiment sites)
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {
                "name": self.name,
                "events": [
                    {"at": e.at, "kind": e.kind, "value": e.value}
                    for e in self.sorted_events()
                ],
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "InputScript":
        data = json.loads(text)
        script = cls(name=data["name"])
        for item in data["events"]:
            script.add(item["at"], item["kind"], item.get("value"))
        return script


class AutoDriver:
    """Replays an :class:`InputScript` onto one platform client."""

    def __init__(self, client) -> None:
        self.client = client
        self.sim = client.sim
        self.played: typing.List[InputEvent] = []

    def play(self, script: InputScript, offset_s: float = 0.0) -> None:
        """Schedule every event at ``offset_s + event.at``."""
        for event in script.sorted_events():
            self.sim.schedule_at(
                max(self.sim.now, offset_s + event.at), self._apply, event
            )

    def _apply(self, event: InputEvent) -> None:
        client = self.client
        kind, value = event.kind, event.value
        if kind == "teleport":
            client.pose.position = Vec3(float(value[0]), 0.0, float(value[1]))
        elif kind == "turn":
            client.pose.turn(float(value))
        elif kind == "face":
            client.motion = FacePoint(Vec3(float(value[0]), 0.0, float(value[1])))
        elif kind == "wander":
            client.motion = Wander(room_radius=float(value))
        elif kind == "stand":
            client.motion = Stand()
        elif kind == "spin":
            client.motion = Spin(rate_deg_s=float(value))
        elif kind == "gesture":
            client.expressions.apply_gesture(
                _gesture_event(str(value), self.sim.now)
            )
        elif kind == "action":
            client.perform_action(int(value), self.sim.now)
        elif kind == "game":
            client.in_game = bool(value)
        elif kind == "mute":
            client.muted = bool(value)
        self.played.append(event)


def _gesture_event(gesture: str, at: float):
    from ..avatar.expression import GestureEvent

    return GestureEvent(gesture, at)


def walk_and_chat_script(duration_s: float = 60.0) -> InputScript:
    """The Table 3 behaviour as a canned script."""
    return (
        InputScript("walk-and-chat")
        .add(0.0, "wander", 2.0)
        .add(duration_s / 3, "gesture", "thumbs-up")
        .add(duration_s / 2, "turn", 180.0)
        .add(2 * duration_s / 3, "gesture", "wave")
    )


def latency_probe_script(n_actions: int = 10, interval_s: float = 2.0) -> InputScript:
    """The Sec. 7 finger-touch sequence as a canned script."""
    script = InputScript("latency-probe").add(0.0, "stand")
    for index in range(n_actions):
        script.add(1.0 + index * interval_s, "action", index)
    return script
