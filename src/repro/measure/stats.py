"""Statistics helpers: means, confidence intervals, linear fits.

The paper reports "average result and standard deviation" for tables
and 95% confidence-interval bands for figures, and repeatedly asserts
*almost linear* growth — :func:`linear_fit`/:func:`linearity_r2`
quantify that claim for the findings checker.
"""

from __future__ import annotations

import dataclasses
import math
import typing

import numpy as np

#: Two-sided 97.5% normal quantile, for large-sample 95% CIs.
Z_95 = 1.959963984540054


@dataclasses.dataclass(frozen=True)
class Summary:
    """Mean, std, count, and a 95% confidence interval."""

    mean: float
    std: float
    count: int

    @property
    def ci95_half_width(self) -> float:
        if self.count < 2:
            return 0.0
        return Z_95 * self.std / math.sqrt(self.count)

    @property
    def ci95(self) -> tuple:
        hw = self.ci95_half_width
        return (self.mean - hw, self.mean + hw)

    def __str__(self) -> str:
        return f"{self.mean:.1f}/{self.std:.1f}"


def summarize(values: typing.Sequence[float]) -> Summary:
    """Summarize a sample; empty input yields a zero summary."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        return Summary(0.0, 0.0, 0)
    if data.size == 1:
        return Summary(float(data[0]), 0.0, 1)
    return Summary(float(data.mean()), float(data.std(ddof=1)), int(data.size))


@dataclasses.dataclass(frozen=True)
class LinearFit:
    """Least-squares line y = slope * x + intercept with fit quality."""

    slope: float
    intercept: float
    r2: float

    def predict(self, x: float) -> float:
        return self.slope * x + self.intercept


def linear_fit(xs: typing.Sequence[float], ys: typing.Sequence[float]) -> LinearFit:
    """Fit a line; raises on fewer than two points."""
    x = np.asarray(list(xs), dtype=float)
    y = np.asarray(list(ys), dtype=float)
    if x.size != y.size:
        raise ValueError(f"length mismatch: {x.size} vs {y.size}")
    if x.size < 2:
        raise ValueError("need at least two points for a linear fit")
    if np.ptp(x) == 0:
        # Degenerate design (all x equal — e.g. a public event whose
        # occupancy never changed): a flat line through the mean.
        y_mean = float(y.mean())
        r2 = 1.0 if np.ptp(y) == 0 else 0.0
        return LinearFit(0.0, y_mean, r2)
    slope, intercept = np.polyfit(x, y, 1)
    predicted = slope * x + intercept
    ss_res = float(((y - predicted) ** 2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return LinearFit(float(slope), float(intercept), r2)


def linearity_r2(xs: typing.Sequence[float], ys: typing.Sequence[float]) -> float:
    """R^2 of the best linear fit — the paper's 'almost linear' check."""
    return linear_fit(xs, ys).r2


def percent_change(start: float, end: float) -> float:
    """Relative change in percent, as the paper quotes FPS drops."""
    if start == 0:
        raise ValueError("percent change from zero is undefined")
    return 100.0 * (end - start) / start
