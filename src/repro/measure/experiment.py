"""Experiment registry: programmatic discovery of every experiment.

Each of the paper's experiments is a plain function somewhere in
:mod:`repro.measure` or :mod:`repro.core`; this registry gives them
stable names, descriptions, and paper-artifact labels so tooling (the
CLI, campaign runners, notebooks) can enumerate and run them uniformly.
"""

from __future__ import annotations

import dataclasses
import typing


@dataclasses.dataclass(frozen=True)
class ExperimentSpec:
    """One runnable experiment and its provenance."""

    name: str
    artifact: str  # the paper table/figure/section it regenerates
    description: str
    runner: typing.Callable
    default_kwargs: typing.Mapping = dataclasses.field(default_factory=dict)

    def run(self, **overrides):
        kwargs = dict(self.default_kwargs)
        kwargs.update(overrides)
        return self.runner(**kwargs)


def _build_registry() -> typing.Dict[str, ExperimentSpec]:
    from ..core.api import (
        fig2_channel_timelines,
        fig3_forwarding,
        fig6_join_timelines,
        fig7_fig8_user_sweep,
        fig9_hubs_large_scale,
        fig11_latency_scaling,
        fig12_downlink_disruption,
        fig13_uplink_disruption,
        latency_loss_qoe,
        remote_rendering_study,
        table1_features,
        table2_infrastructure,
        table3_throughput,
        table4_latency,
        viewport_width_experiment,
    )
    from ..chaos.campaign import run_chaos_cell
    from ..core.solutions import compare_solutions
    from ..qoe.campaign import run_qoe_cell
    from ..scale.shard import metaverse_scale_experiment
    from .infrastructure import regional_study
    from .prediction import run_viewport_tradeoff
    from .workload import run_public_event

    specs = [
        ExperimentSpec(
            "features", "Table 1", "platform feature comparison", table1_features
        ),
        ExperimentSpec(
            "infrastructure",
            "Table 2",
            "protocols, server locations/owners, anycast, RTTs",
            table2_infrastructure,
        ),
        ExperimentSpec(
            "regional",
            "Sec. 4.2",
            "probing from Los Angeles and the United Kingdom",
            regional_study,
        ),
        ExperimentSpec(
            "channels",
            "Fig. 2",
            "control/data channel activity per stage",
            fig2_channel_timelines,
        ),
        ExperimentSpec(
            "throughput",
            "Table 3",
            "two-user throughput, resolution, avatar bitrate",
            table3_throughput,
        ),
        ExperimentSpec(
            "forwarding",
            "Fig. 3",
            "U1 uplink mirrored in U2 downlink",
            fig3_forwarding,
        ),
        ExperimentSpec(
            "join-timeline",
            "Fig. 6",
            "throughput as users join; 180-degree turn at 250 s",
            fig6_join_timelines,
        ),
        ExperimentSpec(
            "viewport-width",
            "Sec. 6.1",
            "snap-turn detection of the server viewport",
            viewport_width_experiment,
        ),
        ExperimentSpec(
            "viewport-tradeoff",
            "Sec. 6.1 (ablation)",
            "viewport width vs prediction vs missing content",
            run_viewport_tradeoff,
        ),
        ExperimentSpec(
            "scalability",
            "Figs. 7/8",
            "throughput, FPS, resources vs 1-15 users",
            fig7_fig8_user_sweep,
        ),
        ExperimentSpec(
            "hubs-large",
            "Fig. 9",
            "private Hubs server with up to 28 users",
            fig9_hubs_large_scale,
        ),
        ExperimentSpec(
            "public-event",
            "Sec. 6.2",
            "churning public event; downlink vs occupancy",
            run_public_event,
            {"platform": "vrchat"},
        ),
        ExperimentSpec(
            "latency",
            "Table 4",
            "end-to-end latency breakdown incl. private Hubs",
            table4_latency,
        ),
        ExperimentSpec(
            "latency-scaling",
            "Fig. 11",
            "E2E latency vs event size",
            fig11_latency_scaling,
        ),
        ExperimentSpec(
            "downlink-disruption",
            "Fig. 12",
            "Worlds under staged downlink limits",
            fig12_downlink_disruption,
        ),
        ExperimentSpec(
            "uplink-disruption",
            "Fig. 13",
            "uplink shaping and the TCP-over-UDP priority",
            fig13_uplink_disruption,
        ),
        ExperimentSpec(
            "qoe",
            "Sec. 8.2",
            "latency and packet-loss QoE thresholds",
            latency_loss_qoe,
        ),
        ExperimentSpec(
            "remote-rendering",
            "Sec. 6.3",
            "remote rendering vs forwarding",
            remote_rendering_study,
        ),
        ExperimentSpec(
            "solutions",
            "Sec. 6.2/6.3 (ablation)",
            "forwarding vs P2P vs interest scoping",
            compare_solutions,
        ),
        ExperimentSpec(
            "metaverse-scale",
            "Sec. 7 (projection)",
            "fluid fan-out to thousands of rooms + capacity plan",
            metaverse_scale_experiment,
        ),
        ExperimentSpec(
            "chaos",
            "Sec. 8 (extension)",
            "one chaos fault-injection cell (scenario x platform x intensity)",
            run_chaos_cell,
            {"scenario": "link-flap", "platform": "vrchat"},
        ),
        ExperimentSpec(
            "qoe-score",
            "Sec. 8 (extension)",
            "per-user QoE scoring cell (MOS windows + SLO evaluation)",
            run_qoe_cell,
            {"platform": "vrchat"},
        ),
    ]
    return {spec.name: spec for spec in specs}


_REGISTRY: typing.Optional[typing.Dict[str, ExperimentSpec]] = None


def registry() -> typing.Dict[str, ExperimentSpec]:
    """The experiment registry (built lazily, cached)."""
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = _build_registry()
    return _REGISTRY


def list_experiments() -> typing.List[ExperimentSpec]:
    """All experiments in registration order."""
    return list(registry().values())


def get_experiment(name: str) -> ExperimentSpec:
    try:
        return registry()[name]
    except KeyError:
        known = ", ".join(sorted(registry()))
        raise KeyError(f"unknown experiment {name!r}; choose from: {known}") from None


def register_experiment(
    name: str,
    runner: typing.Callable,
    artifact: str = "custom",
    description: str = "",
    default_kwargs: typing.Optional[typing.Mapping] = None,
    replace: bool = False,
) -> ExperimentSpec:
    """Register an extra experiment (notebook one-offs, campaign stubs).

    Registered experiments are first-class: the CLI lists them and the
    campaign runner can execute them by name.  Workers forked by the
    runner inherit dynamic registrations.
    """
    if not replace and name in registry():
        raise ValueError(f"experiment {name!r} already registered")
    spec = ExperimentSpec(
        name, artifact, description, runner, dict(default_kwargs or {})
    )
    registry()[name] = spec
    return spec


def unregister_experiment(name: str) -> None:
    """Remove a dynamically registered experiment (no-op if absent)."""
    registry().pop(name, None)


def run_experiment(name: str, **kwargs):
    """Run one experiment by name with optional overrides."""
    return get_experiment(name).run(**kwargs)
