"""Infrastructure probing: server locations, owners, RTTs (Table 2).

Reproduces the Sec. 4.2 methodology: from several vantage points, ping
(ICMP, falling back to TCP SYN probes, falling back to WebRTC RTCP
statistics — the Hubs voice server blocks the first two), traceroute
toward each channel's advertised server address, geolocate it, check
WHOIS ownership, and run the anycast inference of
:mod:`repro.core.anycast`.
"""

from __future__ import annotations

import dataclasses
import typing

from ..core.anycast import AnycastInference, VantageProbe, infer_anycast
from ..net.address import Endpoint, IPAddress
from ..net.geo import EAST_US, MIDDLE_EAST, NORTH_US, Location
from ..net.ping import PingResult, ProbeTool
from ..net.traceroute import TracerouteTool
from ..net.webrtc import WebRtcSession
from ..simcore import Timeout
from .session import Testbed
from .stats import Summary, summarize

#: Vantage points used in Sec. 4.2 (plus the east-coast testbed).
VANTAGE_SITES = (NORTH_US, EAST_US, MIDDLE_EAST)


@dataclasses.dataclass
class ChannelProbeReport:
    """Everything learned about one channel's server infrastructure."""

    channel: str  # "control", "data", or "voice"
    protocol: str  # "HTTPS", "UDP", "RTP/RTCP"
    east_ip: IPAddress
    owner: typing.Optional[str]
    anycast: AnycastInference
    location: str  # region string, or "-" when anycast
    east_rtt: Summary
    rtt_method: str  # "icmp", "tcp", or "webrtc"
    hostname: typing.Optional[str]
    probes: typing.List[VantageProbe]
    same_server_for_colocated_users: bool


@dataclasses.dataclass
class InfrastructureReport:
    """A full Table 2 entry for one platform."""

    platform: str
    control: ChannelProbeReport
    data: typing.List[ChannelProbeReport]  # Hubs has two data rows


def probe_infrastructure(platform: str, seed: int = 0) -> InfrastructureReport:
    """Run the full Sec. 4.2 probing campaign against one platform."""
    # Stations: one per vantage plus a second east-coast user for the
    # same-server check (the paper's two co-located test users).
    locations = list(VANTAGE_SITES) + [EAST_US]
    testbed = Testbed(platform, n_users=len(locations), user_locations=locations)
    east_index = locations.index(EAST_US)
    campaign = _ProbeCampaign(testbed, east_index)
    profile = testbed.profile

    control = campaign.probe_channel(
        "control",
        "HTTPS",
        endpoint_of=lambda host, idx: testbed.deployment.control_endpoint_for(host, idx),
        hostname=profile.control.placement.hostname,
    )
    data_reports = []
    if profile.data.transport == "https":
        https_report = campaign.probe_channel(
            "data",
            "HTTPS",
            endpoint_of=lambda host, idx: testbed.deployment.data_endpoint_for(host, idx),
            hostname=profile.data.placement.hostname,
        )
        data_reports.append(https_report)
    else:
        data_reports.append(
            campaign.probe_channel(
                "data",
                "UDP",
                endpoint_of=lambda host, idx: testbed.deployment.data_endpoint_for(
                    host, idx
                ),
                hostname=profile.data.placement.hostname,
            )
        )
    if profile.data.voice_placement is not None:
        data_reports.append(
            campaign.probe_channel(
                "voice",
                "RTP/RTCP",
                endpoint_of=lambda host, idx: testbed.deployment.voice_endpoint_for(
                    host, idx
                ),
                hostname=None,
            )
        )
    return InfrastructureReport(
        platform=profile.name, control=control, data=data_reports
    )


class _ProbeCampaign:
    """Shared probing machinery over one testbed."""

    def __init__(self, testbed: Testbed, east_index: int) -> None:
        self.testbed = testbed
        self.east_index = east_index

    def probe_channel(
        self,
        channel: str,
        protocol: str,
        endpoint_of: typing.Callable,
        hostname: typing.Optional[str],
    ) -> ChannelProbeReport:
        testbed = self.testbed
        probes: typing.List[VantageProbe] = []
        east_rtts: typing.List[float] = []
        east_method = "icmp"
        east_ip: typing.Optional[IPAddress] = None
        for station in testbed.stations[: len(VANTAGE_SITES)]:
            # Probe the address a *first* session would be given at each
            # vantage (index 0): anycast and georouted addresses do not
            # depend on which of the paper's two users asks.
            endpoint = endpoint_of(station.host, 0)
            rtt_result, method = self._measure_rtt(station, endpoint)
            trace = self._traceroute(station, endpoint.ip)
            router_path = tuple(
                hop.ip
                for hop in trace.hops
                if hop.kind == "time-exceeded" and hop.ip is not None
            )
            probes.append(
                VantageProbe(
                    vantage=station.location.name,
                    location=station.location,
                    server_ip=endpoint.ip,
                    rtt_ms=rtt_result.avg_rtt_ms if rtt_result else None,
                    path_ips=router_path,
                )
            )
            if station.location is EAST_US:
                east_ip = endpoint.ip
                east_method = method
                east_rtts = [r * 1000.0 for r in rtt_result.rtts_s] if rtt_result else []
        inference = infer_anycast(probes)
        location = "-" if inference.anycast else self._geolocate(east_ip)
        owner = testbed.network.whois(east_ip)
        return ChannelProbeReport(
            channel=channel,
            protocol=protocol,
            east_ip=east_ip,
            owner=owner,
            anycast=inference,
            location=location,
            east_rtt=summarize(east_rtts),
            rtt_method=east_method,
            hostname=hostname,
            probes=probes,
            same_server_for_colocated_users=self._same_server(endpoint_of),
        )

    # ------------------------------------------------------------------
    # Probing primitives (run to completion on the testbed's clock)
    # ------------------------------------------------------------------
    def _measure_rtt(self, station, endpoint: Endpoint):
        sim = self.testbed.sim
        tool = ProbeTool(station.ap)
        process = sim.spawn(tool.ping_process(endpoint.ip, count=10))
        sim.run(until=sim.now + 15.0)
        result: PingResult = process.value
        if result is not None and result.reachable:
            return result, "icmp"
        # ICMP blocked: TCP SYN probe (Sec. 4.2).
        process = sim.spawn(tool.tcp_ping_process(endpoint, count=10))
        sim.run(until=sim.now + 15.0)
        result = process.value
        if result is not None and result.reachable:
            return result, "tcp"
        # Both blocked (the Hubs voice SFU): WebRTC RTCP statistics,
        # measured from the device like Chrome's webrtc-internals.
        return self._webrtc_rtt(station, endpoint), "webrtc"

    def _webrtc_rtt(self, station, endpoint: Endpoint) -> typing.Optional[PingResult]:
        sim = self.testbed.sim
        session = WebRtcSession(station.host, 26_000 + station.index, endpoint)
        session.start()
        sim.run(until=sim.now + 13.0)
        session.stop()
        samples = session.rtcp.rtt_samples
        if not samples:
            return None
        return PingResult(endpoint.ip, len(samples), len(samples), list(samples))

    def _traceroute(self, station, ip: IPAddress):
        sim = self.testbed.sim
        tool = TracerouteTool(station.ap)
        process = sim.spawn(tool.trace_process(ip))
        sim.run(until=sim.now + 30.0)
        return process.value

    def _geolocate(self, ip: IPAddress) -> str:
        """MaxMind/ipinfo equivalent: region of the host owning ``ip``.

        Anycast addresses geolocate ambiguously (many hosts, one IP) —
        the paper's Table 2 prints '-' for them; here the ambiguity is
        surfaced explicitly.
        """
        if ip.value in self.testbed.network.anycast_groups:
            return "anycast"
        host = self.testbed.network.host_by_ip(ip)
        if host is None:
            return "unknown"
        from ..net.geo import region_label

        return region_label(host.location)

    def _same_server(self, endpoint_of: typing.Callable) -> bool:
        """Do the two co-located east-coast users share a server?"""
        east = self.testbed.stations[self.east_index]
        # Two sessions from the same campus network: the paper's two
        # co-located test users (user indexes 0 and 1).
        first = endpoint_of(east.host, 0)
        second = endpoint_of(east.host, 1)
        return first.ip == second.ip


@dataclasses.dataclass
class RegionProbe:
    """RTTs observed from one non-default vantage (Sec. 4.2's extra
    experiments in Los Angeles and the United Kingdom)."""

    platform: str
    vantage: str
    control_rtt_ms: typing.Optional[float]
    data_rtt_ms: typing.Optional[float]
    voice_rtt_ms: typing.Optional[float]
    control_server_region: str
    data_server_region: str


class PlatformUnavailableError(RuntimeError):
    """The platform does not operate in the probed region (Worlds in
    Europe at measurement time)."""


def probe_from_vantage(platform: str, vantage: Location, seed: int = 0) -> RegionProbe:
    """Measure control/data RTTs from a single vantage point."""
    from ..platforms.profiles import get_profile

    profile = get_profile(platform)
    if vantage.region.startswith("eu") and not profile.available_in_europe:
        raise PlatformUnavailableError(
            f"{profile.display_name} is not available in Europe"
        )
    testbed = Testbed(platform, n_users=1, user_locations=[vantage], seed=seed)
    campaign = _ProbeCampaign(testbed, east_index=0)
    station = testbed.stations[0]
    control_endpoint = testbed.deployment.control_endpoint_for(station.host, 0)
    data_endpoint = testbed.deployment.data_endpoint_for(station.host, 0)
    control_rtt, _ = campaign._measure_rtt(station, control_endpoint)
    data_rtt, _ = campaign._measure_rtt(station, data_endpoint)
    voice_rtt_ms = None
    voice_endpoint = testbed.deployment.voice_endpoint_for(station.host, 0)
    if voice_endpoint is not None:
        voice_result, _ = (
            campaign._webrtc_rtt(station, voice_endpoint),
            "webrtc",
        )
        if voice_result is not None:
            voice_rtt_ms = voice_result.avg_rtt_ms
    return RegionProbe(
        platform=profile.name,
        vantage=vantage.name,
        control_rtt_ms=control_rtt.avg_rtt_ms if control_rtt else None,
        data_rtt_ms=data_rtt.avg_rtt_ms if data_rtt else None,
        voice_rtt_ms=voice_rtt_ms,
        control_server_region=campaign._geolocate(control_endpoint.ip),
        data_server_region=campaign._geolocate(data_endpoint.ip),
    )


def regional_study(
    vantages: typing.Optional[typing.Mapping[str, Location]] = None,
    platforms: typing.Sequence[str] = (
        "altspacevr",
        "hubs",
        "recroom",
        "vrchat",
        "worlds",
    ),
    seed: int = 0,
) -> typing.List[RegionProbe]:
    """Sec. 4.2's follow-up: probe from Los Angeles and the U.K.

    Expected shapes: AltspaceVR's and Hubs' *data* servers stay in the
    western US (~150 ms / ~140 ms from Europe) while their control
    planes are near everywhere; Rec Room/VRChat stay <5 ms; Worlds is
    unavailable in Europe.
    """
    from ..net.geo import EUROPE_UK, LOS_ANGELES

    if vantages is None:
        vantages = {"los-angeles": LOS_ANGELES, "united-kingdom": EUROPE_UK}
    probes = []
    for vantage_name, location in vantages.items():
        for platform in platforms:
            try:
                probes.append(probe_from_vantage(platform, location, seed=seed))
            except PlatformUnavailableError:
                probes.append(
                    RegionProbe(
                        platform=platform,
                        vantage=location.name,
                        control_rtt_ms=None,
                        data_rtt_ms=None,
                        voice_rtt_ms=None,
                        control_server_region="unavailable",
                        data_server_region="unavailable",
                    )
                )
    return probes


def east_rtt_ms(report: InfrastructureReport, channel: str = "data") -> typing.Optional[float]:
    """Convenience accessor: east-coast RTT of a channel."""
    if channel == "control":
        return report.control.east_rtt.mean
    for item in report.data:
        if item.channel == channel or channel == "data":
            return item.east_rtt.mean
    return None
