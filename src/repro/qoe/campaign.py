"""QoE campaign driver: score a platform matrix, optionally under fault.

One cell (:func:`run_qoe_cell`) builds a fresh testbed with a
metrics-only observability bundle, rides a :class:`QoeProbe` over the
run, and returns a picklable :class:`QoeCellResult` — per-user window
scores plus roll-ups.  Passing a chaos ``scenario`` arms a
:class:`~repro.chaos.inject.FaultInjector` exactly like
``run_chaos_cell`` does, so "what did users feel during the loss
burst?" is one flag away from "did the platform recover?".

Registered as the ``qoe-score`` experiment (``qoe`` already names the
paper's Sec. 8.2 latency/loss study), so matrices flow through
:mod:`repro.runner`: cached, crash-isolated, parallelized, and
byte-identical regardless of worker count.
"""

from __future__ import annotations

import dataclasses
import typing

from ..measure.session import Testbed, download_drain_s
from ..obs.context import MetricsOnlyObservability, active_collector
from ..platforms.profiles import PLATFORM_NAMES
from ..runner import CampaignPlan, TelemetryWriter, run_campaign
from .slo import SloReport, SloSpec, evaluate_slo
from .streams import QoeProbe, UserQoeSummary, WindowScore

#: Clients join this long into the run (same pacing as repro.chaos).
JOIN_AT_S = 2.0
#: Settling time after the per-join download before a fault strikes.
SETTLE_S = 8.0


@dataclasses.dataclass(frozen=True)
class QoeCellResult:
    """Everything one QoE cell scored, picklable for the runner cache."""

    platform: str
    seed: int
    n_users: int
    scenario: typing.Optional[str]
    intensity: typing.Optional[str]
    #: Sim time the cell ran to.
    end_s: float
    windows: typing.Tuple[WindowScore, ...]
    users: typing.Tuple[UserQoeSummary, ...]
    mean_score: float
    worst_score: float
    #: User-seconds spent below the degraded threshold, summed over users.
    below_threshold_user_s: float
    #: Correlation ids (defaulted so cached pre-observability results
    #: still load): the campaign and task this cell came from.
    campaign_id: str = ""
    task_id: str = ""

    def evaluate(self, spec: SloSpec) -> SloReport:
        """Evaluate one SLO over this cell's window scores."""
        return evaluate_slo(spec, self.windows)


def run_qoe_cell(
    platform: str,
    n_users: int = 2,
    duration_s: float = 30.0,
    seed: int = 0,
    scenario: typing.Optional[str] = None,
    intensity: str = "mild",
    lp_domains: int = 1,
) -> QoeCellResult:
    """Score one (platform, seed) cell, optionally under a chaos fault.

    ``duration_s`` is the scored in-event time after join + download
    settle; with a ``scenario`` the run instead extends to the
    scenario's observation window past the heal point (matching
    ``run_chaos_cell`` timing), whichever is later.  ``lp_domains > 1``
    scores the same cell on the space-parallel kernel
    (:mod:`repro.simcore.lp`) with snapshot ticks fenced — scores are
    byte-identical to the serial run.
    """
    obs = None if active_collector() is not None else MetricsOnlyObservability()
    testbed = Testbed(
        platform, n_users=n_users, seed=seed, obs=obs, lp_domains=lp_domains
    )
    testbed.start_all(join_at=JOIN_AT_S)
    probe = QoeProbe(testbed)
    probe.start()
    # Snapshot ticks read gauges owned by station domains.
    testbed.add_fence_every(probe.period_s)

    settle = JOIN_AT_S + SETTLE_S + download_drain_s(testbed.profile)
    end = settle + duration_s
    if scenario is not None:
        from ..chaos.inject import FaultInjector
        from ..chaos.scenarios import get_scenario

        spec = get_scenario(scenario)
        spec.params(intensity)  # fail fast on unknown intensity
        injector = FaultInjector(testbed, spec, intensity)
        fault_at = settle + spec.fault_offset_s
        heal_at = injector.arm(fault_at)
        end = max(end, heal_at + spec.observe_s)

    testbed.run(until=end)

    windows = tuple(probe.window_scores())
    users = tuple(probe.user_summaries())
    values = [window.score for window in windows]
    return QoeCellResult(
        platform=testbed.profile.name,
        seed=seed,
        n_users=n_users,
        scenario=scenario,
        intensity=intensity if scenario is not None else None,
        end_s=round(end, 6),
        windows=windows,
        users=users,
        mean_score=round(sum(values) / len(values), 6) if values else 0.0,
        worst_score=round(min(values), 6) if values else 0.0,
        below_threshold_user_s=round(
            sum(user.seconds_below for user in users), 6
        ),
    )


@dataclasses.dataclass
class QoeCampaignOutcome:
    """Cell results plus the raw runner result for one QoE campaign."""

    campaign: typing.Any  # repro.runner.CampaignResult
    results: typing.List[QoeCellResult]

    @property
    def ok(self) -> bool:
        return self.campaign.ok

    def pooled_windows(self, platform: str) -> typing.List[WindowScore]:
        """All window scores for one platform, across seeds, in a
        canonical (seed, user, time) order for SLO evaluation."""
        windows: typing.List[WindowScore] = []
        for result in self.results:
            if result.platform == platform:
                windows.extend(result.windows)
        return windows

    def platforms(self) -> typing.List[str]:
        seen: typing.List[str] = []
        for result in self.results:
            if result.platform not in seen:
                seen.append(result.platform)
        return seen


def build_qoe_plan(
    platforms: typing.Optional[typing.Sequence[str]] = None,
    seeds: typing.Iterable[int] = (0,),
    *,
    n_users: int = 2,
    duration_s: float = 30.0,
    scenario: typing.Optional[str] = None,
    intensity: str = "mild",
    lp_domains: int = 1,
) -> CampaignPlan:
    """Expand the QoE matrix (platform x seed) into runner tasks.

    The default ``lp_domains=1`` is omitted from task kwargs, keeping
    serial task ids (and their caches) unchanged."""
    base = {"n_users": n_users, "duration_s": duration_s}
    if scenario is not None:
        base["scenario"] = scenario
        base["intensity"] = intensity
    if lp_domains != 1:
        base["lp_domains"] = lp_domains
    return CampaignPlan.from_matrix(
        ["qoe-score"],
        grid={"platform": list(platforms) if platforms else list(PLATFORM_NAMES)},
        seeds=seeds,
        base_kwargs=base,
    )


def run_qoe_campaign(
    platforms: typing.Optional[typing.Sequence[str]] = None,
    seeds: typing.Iterable[int] = (0,),
    *,
    n_users: int = 2,
    duration_s: float = 30.0,
    scenario: typing.Optional[str] = None,
    intensity: str = "mild",
    parallel: bool = True,
    max_workers: typing.Optional[int] = None,
    timeout_s: typing.Optional[float] = None,
    max_retries: int = 2,
    cache_dir: typing.Optional[str] = None,
    use_cache: bool = True,
    telemetry_path: typing.Optional[str] = None,
    metrics_dir: typing.Optional[str] = None,
    collect_obs: bool = False,
    lp_domains: int = 1,
) -> QoeCampaignOutcome:
    """Run a QoE matrix through the campaign runner.

    The driver owns the telemetry stream: every event carries the
    plan-derived ``campaign_id``, and each scored cell is echoed as a
    ``qoe_cell`` event after the runner's ``campaign_end`` — the join
    point the HTML campaign report uses.
    """
    plan = build_qoe_plan(
        platforms,
        seeds,
        n_users=n_users,
        duration_s=duration_s,
        scenario=scenario,
        intensity=intensity,
        lp_domains=lp_domains,
    )
    with TelemetryWriter(
        telemetry_path, context={"campaign_id": plan.campaign_id}
    ) as telemetry:
        campaign = run_campaign(
            plan,
            parallel=parallel,
            max_workers=max_workers,
            timeout_s=timeout_s,
            max_retries=max_retries,
            cache_dir=cache_dir,
            use_cache=use_cache,
            telemetry=telemetry,
            metrics_dir=metrics_dir,
            collect_obs=collect_obs,
        )
        results = _ordered_results(campaign, plan.campaign_id)
        for cell in results:
            telemetry.emit(
                "qoe_cell",
                task=cell.task_id,
                platform=cell.platform,
                seed=cell.seed,
                scenario=cell.scenario,
                intensity=cell.intensity,
                mean_score=cell.mean_score,
                worst_score=cell.worst_score,
                below_threshold_user_s=cell.below_threshold_user_s,
            )
    return QoeCampaignOutcome(campaign=campaign, results=results)


def _ordered_results(campaign, campaign_id: str = "") -> typing.List[QoeCellResult]:
    """Successful results in a canonical, shard-independent order,
    stamped with the correlation ids of the campaign that ran them."""
    results = []
    for result in campaign:
        if not (result.ok and isinstance(result.value, QoeCellResult)):
            continue
        cell = result.value
        try:
            cell = dataclasses.replace(
                cell,
                campaign_id=campaign_id,
                task_id=result.spec.task_id,
            )
        except (AttributeError, TypeError):  # cached pre-correlation pickle
            pass
        results.append(cell)
    results.sort(key=lambda r: (r.platform, r.seed))
    return results
