"""Declarative QoE SLOs: percentile targets, burn rates, breach events.

An :class:`SloSpec` is the SRE-style contract "the p05 user-window
score stays at or above 3.0, evaluated over 60 s windows, with a 5%
error budget" — written ``p05>=3.0/60s@0.05``.  Evaluation pools
scored windows (from :class:`~repro.qoe.streams.QoeProbe`) into fixed
evaluation windows and produces:

* per-window compliance + **burn rate** (bad fraction over budget
  fraction, the standard SRE alerting signal);
* **breach events** — maximal runs of non-compliant windows with their
  duration and worst observed score; and
* an :class:`SloReport` that converts to a
  :class:`~repro.core.findings.Finding` (numbered from
  ``QOE_FINDING_BASE``) and exports into a metric registry for the
  JSONL/Prometheus pipelines.

Like the scoring model, everything is pure float arithmetic with
``round(..., 6)``: byte-identical across runs and worker counts.
"""

from __future__ import annotations

import dataclasses
import math
import re
import typing

from ..core.findings import Finding, qoe_finding
from .streams import WindowScore

#: Default fraction of windows allowed below target (the error budget).
DEFAULT_BUDGET_FRACTION = 0.05

#: The SLO applied when chaos verdicts report breach durations without
#: the caller specifying one: p05 of user-window scores >= 3.0 ("fair")
#: over 10 s evaluation windows.
DEFAULT_SLO_TEXT = "p05>=3.0/10s"

_SPEC_PATTERN = re.compile(
    r"^p(\d+(?:\.\d+)?)\s*>=\s*(\d+(?:\.\d+)?)\s*/\s*(\d+(?:\.\d+)?)s"
    r"(?:\s*@\s*(\d*\.?\d+))?$"
)


@dataclasses.dataclass(frozen=True)
class SloSpec:
    """One service-level objective over pooled window scores."""

    name: str
    #: Minimum acceptable score at the percentile.
    target: float
    #: Percentile (0-100) the target applies to; p05 guards the tail.
    percentile: float
    #: Evaluation-window width in sim seconds.
    window_s: float
    #: Fraction of scores allowed below target before burn rate hits 1.
    budget_fraction: float = DEFAULT_BUDGET_FRACTION

    def __post_init__(self) -> None:
        if not (0.0 <= self.percentile <= 100.0):
            raise ValueError(f"percentile must be in [0, 100], got {self.percentile}")
        if self.window_s <= 0 or not math.isfinite(self.window_s):
            raise ValueError(f"window_s must be positive, got {self.window_s}")
        if not (0.0 < self.budget_fraction <= 1.0):
            raise ValueError(
                f"budget_fraction must be in (0, 1], got {self.budget_fraction}"
            )

    @classmethod
    def parse(cls, text: str) -> "SloSpec":
        """Parse the compact spec grammar ``p<P>>=<target>/<W>s[@<budget>]``.

        Examples: ``p05>=3.0/60s`` (p05 score >= 3.0 over 60 s windows,
        default 5% budget), ``p50>=4.0/30s@0.01``.
        """
        match = _SPEC_PATTERN.match(text.strip())
        if match is None:
            raise ValueError(
                f"bad SLO spec {text!r}; expected e.g. 'p05>=3.0/60s' or "
                f"'p05>=3.0/60s@0.05'"
            )
        percentile, target, window_s, budget = match.groups()
        return cls(
            name=text.strip(),
            target=float(target),
            percentile=float(percentile),
            window_s=float(window_s),
            budget_fraction=(
                float(budget) if budget is not None else DEFAULT_BUDGET_FRACTION
            ),
        )


DEFAULT_SLO = SloSpec.parse(DEFAULT_SLO_TEXT)


def percentile(values: typing.Sequence[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        raise ValueError("percentile of an empty sequence")
    ordered = sorted(values)
    rank = max(0, math.ceil(q / 100.0 * len(ordered)) - 1)
    return ordered[rank]


@dataclasses.dataclass(frozen=True)
class SloWindow:
    """One evaluation window of an SLO."""

    t0: float
    t1: float
    n_scores: int
    percentile_score: typing.Optional[float]
    bad_fraction: float
    burn_rate: float
    compliant: bool


@dataclasses.dataclass(frozen=True)
class BreachEvent:
    """A maximal run of consecutive non-compliant evaluation windows."""

    t_start: float
    t_end: float
    duration_s: float
    worst_score: float


@dataclasses.dataclass(frozen=True)
class SloReport:
    """The full evaluation of one SLO over one run's scores."""

    spec: SloSpec
    windows: typing.Tuple[SloWindow, ...]
    breaches: typing.Tuple[BreachEvent, ...]
    total_breach_s: float
    worst_burn_rate: float
    compliant: bool

    def to_finding(self, index: int = 0) -> Finding:
        evidence = (
            f"{len(self.windows)} eval windows of {self.spec.window_s:g}s; "
            f"{len(self.breaches)} breach(es) totalling "
            f"{self.total_breach_s:g}s; worst burn rate "
            f"{self.worst_burn_rate:g}"
        )
        return qoe_finding(
            index, f"QoE SLO {self.spec.name}", self.compliant, evidence
        )

    def into_registry(self, registry, **labels) -> None:
        """Export breach/burn aggregates as metrics (no-op when the
        registry is the shared null)."""
        if not registry.enabled:
            return
        slo_labels = dict(labels, slo=self.spec.name)
        registry.counter("qoe.slo_breach_seconds", **slo_labels).inc(
            self.total_breach_s
        )
        registry.counter(
            "qoe.slo_windows_total",
            compliant="yes" if self.compliant else "no",
            **slo_labels,
        ).inc(len(self.windows))
        registry.gauge("qoe.slo_worst_burn_rate", **slo_labels).set(
            self.worst_burn_rate
        )


def evaluate_slo(
    spec: SloSpec,
    scores: typing.Sequence[WindowScore],
    t_start: typing.Optional[float] = None,
    t_end: typing.Optional[float] = None,
) -> SloReport:
    """Evaluate one SLO over scored windows.

    Scores are assigned to the evaluation window containing their end
    time (``t1``); empty evaluation windows are vacuously compliant.
    """
    if not scores:
        return SloReport(
            spec=spec,
            windows=(),
            breaches=(),
            total_breach_s=0.0,
            worst_burn_rate=0.0,
            compliant=True,
        )
    if t_start is None:
        t_start = min(score.t0 for score in scores)
    if t_end is None:
        t_end = max(score.t1 for score in scores)
    n_windows = max(1, math.ceil((t_end - t_start) / spec.window_s - 1e-9))

    pools: typing.List[typing.List[float]] = [[] for _ in range(n_windows)]
    for score in scores:
        index = int((score.t1 - t_start) / spec.window_s)
        index = min(max(index, 0), n_windows - 1)
        pools[index].append(score.score)

    windows: typing.List[SloWindow] = []
    worst_burn = 0.0
    for index, pool in enumerate(pools):
        t0 = t_start + index * spec.window_s
        t1 = min(t_end, t0 + spec.window_s)
        if not pool:
            windows.append(
                SloWindow(
                    t0=round(t0, 6),
                    t1=round(t1, 6),
                    n_scores=0,
                    percentile_score=None,
                    bad_fraction=0.0,
                    burn_rate=0.0,
                    compliant=True,
                )
            )
            continue
        pct = percentile(pool, spec.percentile)
        bad = sum(1 for value in pool if value < spec.target) / len(pool)
        burn = round(bad / spec.budget_fraction, 6)
        worst_burn = max(worst_burn, burn)
        windows.append(
            SloWindow(
                t0=round(t0, 6),
                t1=round(t1, 6),
                n_scores=len(pool),
                percentile_score=round(pct, 6),
                bad_fraction=round(bad, 6),
                burn_rate=burn,
                compliant=pct >= spec.target,
            )
        )

    breaches = _breach_events(windows, pools)
    total_breach = round(sum(event.duration_s for event in breaches), 6)
    return SloReport(
        spec=spec,
        windows=tuple(windows),
        breaches=tuple(breaches),
        total_breach_s=total_breach,
        worst_burn_rate=round(worst_burn, 6),
        compliant=not breaches,
    )


def _breach_events(
    windows: typing.Sequence[SloWindow],
    pools: typing.Sequence[typing.Sequence[float]],
) -> typing.List[BreachEvent]:
    """Collapse consecutive non-compliant windows into breach events."""
    events: typing.List[BreachEvent] = []
    run_start: typing.Optional[int] = None
    for i in range(len(windows) + 1):
        breached = i < len(windows) and not windows[i].compliant
        if breached and run_start is None:
            run_start = i
        elif not breached and run_start is not None:
            span = windows[run_start:i]
            worst = min(
                min(pools[j]) for j in range(run_start, i) if pools[j]
            )
            events.append(
                BreachEvent(
                    t_start=span[0].t0,
                    t_end=span[-1].t1,
                    duration_s=round(span[-1].t1 - span[0].t0, 6),
                    worst_score=round(worst, 6),
                )
            )
            run_start = None
    return events
