"""repro.qoe: per-user experience scoring + SLO engine over repro.obs.

The observability stack's user-facing quality axis: derived per-user
signal streams (:mod:`.streams`) tapped read-only from the metric
registries, a deterministic MOS-style scoring model with MetaVRadar
lifecycle-phase weighting (:mod:`.model`), declarative SLOs evaluated
into burn rates and breach events (:mod:`.slo`), campaign cells that
score platforms — optionally under chaos faults — through
:mod:`repro.runner` (:mod:`.campaign`), and cohort-level scoring for
the fluid metaverse-scale projections (:mod:`.cohort`).  See
``docs/QOE.md``.

Exports resolve lazily (PEP 562) so that importing the scoring model
alone — e.g. for CLI help text — does not pull in the full testbed
stack.
"""

_EXPORTS = {
    "ChannelSignals": ".model",
    "DEFAULT_MODEL": ".model",
    "DEGRADED_THRESHOLD": ".model",
    "DENSE_EVENT_REMOTES": ".model",
    "PHASES": ".model",
    "PiecewiseCurve": ".model",
    "QoeModel": ".model",
    "classify_phase": ".model",
    "mos_label": ".model",
    "phase_code": ".model",
    "phase_from_code": ".model",
    "QoeProbe": ".streams",
    "SignalWindow": ".streams",
    "UserQoeSummary": ".streams",
    "WindowScore": ".streams",
    "BreachEvent": ".slo",
    "DEFAULT_SLO": ".slo",
    "SloReport": ".slo",
    "SloSpec": ".slo",
    "SloWindow": ".slo",
    "evaluate_slo": ".slo",
    "percentile": ".slo",
    "QoeCampaignOutcome": ".campaign",
    "QoeCellResult": ".campaign",
    "build_qoe_plan": ".campaign",
    "run_qoe_campaign": ".campaign",
    "run_qoe_cell": ".campaign",
    "RoomQoe": ".cohort",
    "cohort_score": ".cohort",
    "mean_mos_per_bin": ".cohort",
    "room_qoe": ".cohort",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    module = importlib.import_module(module_name, __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
