"""Cohort-level QoE: experience scores from fluid rates, not packets.

The :mod:`repro.scale` engine projects thousands of rooms as analytic
occupancy/rate functions — no per-user packet stream exists to probe.
But the scoring model only needs the signals occupancy determines:
rendered-avatar FPS on a reference headset (Quest 2, the paper's
device), the dense-event phase cutover, and the loss fraction the fluid
access-link queue already computes.  Scoring the occupancy step
function segment-by-segment and integrating user-weighted MOS over
bins gives cohort QoE that is exact for the fluid model and — like
everything else in the shard pipeline — byte-identical regardless of
shard count, because every term depends only on the room's own
occupancy function.
"""

from __future__ import annotations

import dataclasses
import functools
import typing

import numpy as np

from ..device.headset import QUEST_2
from ..device.rendering import RenderModel
from ..platforms.profiles import get_profile
from .model import (
    DEGRADED_THRESHOLD,
    DENSE_EVENT_REMOTES,
    ChannelSignals,
    DEFAULT_MODEL,
)

#: Loss fractions are quantized to this many digits before scoring so
#: the per-(platform, occupancy, loss) score cache stays small and the
#: quantization itself is deterministic.
_LOSS_DIGITS = 4


@functools.lru_cache(maxsize=16384)
def cohort_score(
    platform: str, occupancy: int, loss_fraction: float = 0.0
) -> float:
    """MOS score for one user in a room of ``occupancy`` users.

    Signals derivable from occupancy alone: rendered FPS from the
    platform's render-cost model on a Quest 2 (``occupancy - 1`` remote
    avatars), motion loss from the fluid queue's drop fraction, and the
    lifecycle phase (dense-event at MetaVRadar's remote-count cutover).
    Latency/voice/world signals have no fluid-level source and drop out
    with their weights renormalized.
    """
    if occupancy <= 0:
        return 0.0
    profile = get_profile(platform)
    remotes = max(0, int(occupancy) - 1)
    fps = RenderModel(profile.render_cost, QUEST_2).fps(remotes)
    phase = "dense-event" if remotes >= DENSE_EVENT_REMOTES else "steady"
    signals = ChannelSignals(
        motion_loss=round(min(1.0, max(0.0, loss_fraction)), _LOSS_DIGITS),
        render_fps=fps,
    )
    return DEFAULT_MODEL.score(signals, phase)


@dataclasses.dataclass(frozen=True)
class RoomQoe:
    """Per-bin cohort QoE aggregates for one fluid room."""

    #: Integral of occupancy * score per bin (MOS-weighted user-seconds).
    mos_user_seconds_per_bin: typing.Tuple[float, ...]
    #: Integral of occupancy per bin (user-seconds).
    user_seconds_per_bin: typing.Tuple[float, ...]
    #: User-seconds spent at occupancies scoring below the threshold.
    below_threshold_user_s: float


def room_qoe(
    result,
    duration_s: float,
    bin_s: float,
    threshold: float = DEGRADED_THRESHOLD,
) -> RoomQoe:
    """Score one :class:`~repro.scale.fluid.FluidRoomResult`'s cohort.

    The room's loss fraction (dropped over offered bits at the access
    link) applies uniformly across its occupancy segments — the fluid
    queue has no finer time structure to offer.
    """
    occupancy = result.occupancy
    offered = result.viewer_down_bps.integral() + result.dropped_bits
    loss = result.dropped_bits / offered if offered > 0 else 0.0

    def score(k: float) -> float:
        return cohort_score(result.platform, int(round(k)), loss)

    weighted = occupancy.map(lambda k: k * score(k))
    below = occupancy.map(
        lambda k: k if (k > 0 and score(k) < threshold) else 0.0
    )
    return RoomQoe(
        mos_user_seconds_per_bin=tuple(
            float(v) for v in weighted.bins(0.0, duration_s, bin_s)
        ),
        user_seconds_per_bin=tuple(
            float(v) for v in occupancy.bins(0.0, duration_s, bin_s)
        ),
        below_threshold_user_s=float(below.integral()),
    )


def mean_mos_per_bin(
    mos_user_seconds: typing.Sequence[float],
    user_seconds: typing.Sequence[float],
) -> np.ndarray:
    """Occupancy-weighted mean MOS per bin (0 where a bin is empty)."""
    mos = np.asarray(mos_user_seconds, dtype=float)
    users = np.asarray(user_seconds, dtype=float)
    out = np.zeros_like(mos)
    np.divide(mos, users, out=out, where=users > 0)
    return out
