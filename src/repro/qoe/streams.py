"""Per-user QoE signal streams derived from the obs registries.

A :class:`QoeProbe` rides a :class:`~repro.obs.PeriodicSnapshotter`
over a testbed's metric registry and, after the run, differences the
sampled counter series and reads the sampled gauges into per-window
:class:`~repro.qoe.model.ChannelSignals` — end-to-end avatar-update
latency, update loss against the platform's advertised rate, staleness,
world/session freshness, voice activity, and device FPS from
:mod:`repro.device.metrics`.

The probe is strictly read-only: fn-gauges are pure reads, counter
sampling copies values, and the snapshotter's tick events touch no
simulation state — an observed run stays byte-identical to an
unobserved one, the load-bearing invariant of :mod:`repro.obs`.
"""

from __future__ import annotations

import dataclasses
import typing

from ..obs.context import obs_of
from ..obs.snapshot import PeriodicSnapshotter
from .model import (
    DEFAULT_MODEL,
    DEGRADED_THRESHOLD,
    ChannelSignals,
    QoeModel,
    phase_from_code,
)

#: Default scoring-window width in sim seconds.
QOE_WINDOW_S = 2.0

#: Below this many expected updates a window cannot estimate loss.
_MIN_EXPECTED_UPDATES = 0.5


@dataclasses.dataclass(frozen=True)
class SignalWindow:
    """Raw derived signals for one user over one snapshot window."""

    user: str
    t0: float
    t1: float
    phase: str
    signals: ChannelSignals


@dataclasses.dataclass(frozen=True)
class WindowScore:
    """One scored window: the atom SLO evaluation pools over."""

    user: str
    t0: float
    t1: float
    phase: str
    score: float


@dataclasses.dataclass(frozen=True)
class UserQoeSummary:
    """Whole-run experience summary for one user."""

    user: str
    n_windows: int
    mean_score: float
    worst_score: float
    best_score: float
    #: Sim-seconds spent in windows scoring below the threshold.
    seconds_below: float


class QoeProbe:
    """Samples a testbed's registry and scores per-user windows."""

    def __init__(
        self,
        testbed,
        model: QoeModel = DEFAULT_MODEL,
        period_s: float = QOE_WINDOW_S,
    ) -> None:
        self.testbed = testbed
        self.sim = testbed.sim
        self.model = model
        self.period_s = period_s
        self.registry = obs_of(self.sim).registry
        self.snapshotter = PeriodicSnapshotter(
            self.sim, self.registry, period_s=period_s
        )

    @property
    def enabled(self) -> bool:
        return bool(self.registry.enabled)

    @property
    def users(self) -> typing.List[str]:
        return [station.client.user_id for station in self.testbed.stations]

    def start(self) -> None:
        """Begin sampling (no-op when observability is disabled)."""
        self.snapshotter.start()

    def stop(self) -> None:
        self.snapshotter.stop()

    # ------------------------------------------------------------------
    # Signal derivation
    # ------------------------------------------------------------------
    def _series(self, name: str, **labels) -> typing.Tuple[list, list]:
        return self.snapshotter.series(name, **labels)

    def signal_windows(self) -> typing.List[SignalWindow]:
        """Per-user per-window raw signals, in (user, time) order."""
        windows: typing.List[SignalWindow] = []
        for station in self.testbed.stations:
            windows.extend(self._user_windows(station))
        return windows

    def _user_windows(self, station) -> typing.List[SignalWindow]:
        client = station.client
        user = client.user_id
        rate_hz = client.profile.data.update_rate_hz

        times, updates = self._series("qoe.updates_received", user=user)
        if len(times) < 2:
            return []
        _, latency_sums = self._series("qoe.update_latency_sum_s", user=user)
        _, remotes = self._series("qoe.active_remotes", user=user)
        _, staleness = self._series("qoe.update_staleness_s", user=user)
        _, phase_codes = self._series("qoe.phase", user=user)
        _, fps = self._series("device.fps", user=user)
        _, session_rx = self._series(
            "platform.client.rx_bytes", channel="session", user=user
        )
        _, voice_rx = self._series(
            "platform.client.rx_bytes", channel="voice", user=user
        )
        _, voice_tx = self._series(
            "platform.client.tx_bytes", channel="voice", user=user
        )

        voice_active = bool(voice_rx) and bool(voice_tx) and (
            (voice_rx[-1] - voice_rx[0]) + (voice_tx[-1] - voice_tx[0]) > 0
        )
        session_last_activity = self._activity_times(times, session_rx)

        windows: typing.List[SignalWindow] = []
        for i in range(1, len(times)):
            t0, t1 = times[i - 1], times[i]
            span = t1 - t0
            d_updates = updates[i] - updates[i - 1]
            d_latency = latency_sums[i] - latency_sums[i - 1] if latency_sums else 0.0

            motion_latency_ms = (
                round(d_latency / d_updates * 1000.0, 6) if d_updates > 0 else None
            )
            expected = remotes[i] * rate_hz * span if remotes else 0.0
            motion_loss = (
                round(min(1.0, max(0.0, 1.0 - d_updates / expected)), 6)
                if expected > _MIN_EXPECTED_UPDATES
                else None
            )
            motion_staleness_s = (
                round(staleness[i], 6) if staleness and updates[i] > 0 else None
            )

            world_staleness_s = None
            if session_last_activity is not None:
                last = session_last_activity[i]
                if last is not None:
                    world_staleness_s = round(max(0.0, t1 - last), 6)

            voice_latency_ms = None
            voice_loss = None
            if voice_active:
                d_voice = voice_rx[i] - voice_rx[i - 1]
                voice_loss = 1.0 if d_voice <= 0 else 0.0
                # Voice shares the data path; reuse the motion latency
                # sample as the mouth-to-ear network component.
                voice_latency_ms = motion_latency_ms

            render_fps = round(fps[i], 6) if fps else None
            phase = phase_from_code(phase_codes[i]) if phase_codes else "steady"

            windows.append(
                SignalWindow(
                    user=user,
                    t0=round(t0, 6),
                    t1=round(t1, 6),
                    phase=phase,
                    signals=ChannelSignals(
                        motion_latency_ms=motion_latency_ms,
                        motion_loss=motion_loss,
                        motion_staleness_s=motion_staleness_s,
                        voice_latency_ms=voice_latency_ms,
                        voice_loss=voice_loss,
                        world_staleness_s=world_staleness_s,
                        render_fps=render_fps,
                    ),
                )
            )
        return windows

    @staticmethod
    def _activity_times(
        times: typing.Sequence[float], values: typing.Sequence[float]
    ) -> typing.Optional[typing.List[typing.Optional[float]]]:
        """``result[i]`` = last sample time (<= times[i]) at which the
        cumulative counter increased; None entries before any activity;
        None result when the series was never sampled."""
        if not values:
            return None
        result: typing.List[typing.Optional[float]] = []
        last: typing.Optional[float] = times[0] if values[0] > 0 else None
        result.append(last)
        for i in range(1, len(values)):
            if values[i] > values[i - 1]:
                last = times[i]
            result.append(last)
        return result

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def window_scores(self) -> typing.List[WindowScore]:
        """Every signal window pushed through the scoring model."""
        return [
            WindowScore(
                user=window.user,
                t0=window.t0,
                t1=window.t1,
                phase=window.phase,
                score=self.model.score(window.signals, window.phase),
            )
            for window in self.signal_windows()
        ]

    def user_summaries(
        self,
        threshold: float = DEGRADED_THRESHOLD,
        scores: typing.Optional[typing.Sequence[WindowScore]] = None,
    ) -> typing.List[UserQoeSummary]:
        """Per-user roll-up of the window scores, in user order."""
        if scores is None:
            scores = self.window_scores()
        by_user: typing.Dict[str, typing.List[WindowScore]] = {}
        for score in scores:
            by_user.setdefault(score.user, []).append(score)
        summaries: typing.List[UserQoeSummary] = []
        for user in self.users:
            rows = by_user.get(user, [])
            if not rows:
                continue
            values = [row.score for row in rows]
            below = sum(row.t1 - row.t0 for row in rows if row.score < threshold)
            summaries.append(
                UserQoeSummary(
                    user=user,
                    n_windows=len(rows),
                    mean_score=round(sum(values) / len(values), 6),
                    worst_score=round(min(values), 6),
                    best_score=round(max(values), 6),
                    seconds_below=round(below, 6),
                )
            )
        return summaries
