"""Deterministic MOS-style scoring: QoS signals -> experience scores.

The mapping follows the UNSW "Impact of Network QoS on Metaverse VR
User Experience" study (PAPERS.md): each *channel class* — avatar
motion, voice, world state, plus local rendering — gets piecewise-
linear curves from its raw QoS signals (latency, loss, staleness, FPS)
onto the classic 1-5 MOS scale, and the per-channel scores are combined
with weights that depend on the user's lifecycle *phase* per
MetaVRadar: a user sitting in the lobby barely notices motion loss but
is acutely sensitive to world-state staleness, while a user in a dense
event weighs motion smoothness above everything else.

Everything here is pure arithmetic on floats with a final
``round(..., 6)``, so scores are byte-identical across runs, worker
processes, and platforms — the same determinism bar as
:mod:`repro.chaos` verdicts.
"""

from __future__ import annotations

import dataclasses
import typing

#: MOS bounds (ITU-T P.800 absolute category rating).
MOS_MIN = 1.0
MOS_MAX = 5.0

#: A per-user mean score below this counts as a degraded experience
#: ("fair" on the MOS ladder is the classic acceptability cliff).
DEGRADED_THRESHOLD = 3.0

#: MetaVRadar lifecycle phases, in code order (``phase_code`` is the
#: index, bridged through the ``qoe.phase`` gauge as a float).
PHASES: typing.Tuple[str, ...] = (
    "lobby",
    "world-switch",
    "steady",
    "dense-event",
    "exit",
)

#: Active remote avatars at/above this put the user in "dense-event"
#: (MetaVRadar's dense-interaction state; also where Fig. 7/8 FPS
#: starts to sag on Quest 2).
DENSE_EVENT_REMOTES = 8


def classify_phase(stage: str, joining: bool, active_remotes: int) -> str:
    """Map raw client state onto a MetaVRadar lifecycle phase."""
    if joining:
        return "world-switch"
    if stage in ("init", "welcome"):
        return "lobby"
    if stage == "event":
        if active_remotes >= DENSE_EVENT_REMOTES:
            return "dense-event"
        return "steady"
    return "exit"


def phase_code(phase: str) -> int:
    """Stable integer code for a phase (index into :data:`PHASES`)."""
    try:
        return PHASES.index(phase)
    except ValueError:
        raise ValueError(
            f"unknown QoE phase {phase!r}; choose from {PHASES}"
        ) from None


def phase_from_code(code: float) -> str:
    """Inverse of :func:`phase_code` for gauge-bridged floats."""
    index = int(round(code))
    if 0 <= index < len(PHASES):
        return PHASES[index]
    raise ValueError(f"phase code {code!r} out of range for {PHASES}")


class PiecewiseCurve:
    """Monotone piecewise-linear map from a QoS signal to a MOS score.

    Defined by ``(signal_value, score)`` points sorted by signal value;
    outside the domain the score clamps to the first/last point.  The
    curve direction is free (FPS curves rise, latency curves fall).
    """

    __slots__ = ("points",)

    def __init__(self, points: typing.Sequence[typing.Tuple[float, float]]) -> None:
        if len(points) < 2:
            raise ValueError("a curve needs at least two points")
        xs = [x for x, _ in points]
        if xs != sorted(xs):
            raise ValueError(f"curve points must be sorted by signal value: {xs}")
        self.points = tuple((float(x), float(s)) for x, s in points)

    def score(self, value: float) -> float:
        points = self.points
        if value <= points[0][0]:
            return points[0][1]
        if value >= points[-1][0]:
            return points[-1][1]
        for (x0, s0), (x1, s1) in zip(points, points[1:]):
            if value <= x1:
                frac = (value - x0) / (x1 - x0)
                return s0 + frac * (s1 - s0)
        return points[-1][1]  # unreachable; keeps the type checker calm


# ----------------------------------------------------------------------
# Channel curves (signal units in the curve names)
# ----------------------------------------------------------------------
#: Avatar-motion end-to-end update latency (milliseconds).  The paper's
#: Sec. 8.2 user study found latency below ~150 ms imperceptible in
#: social VR and annoyance setting in past ~300 ms.
MOTION_LATENCY_MS = PiecewiseCurve(
    [(0.0, 5.0), (50.0, 5.0), (150.0, 4.0), (300.0, 3.0), (600.0, 2.0), (1000.0, 1.0)]
)
#: Avatar-update loss fraction; Sec. 8.2 found even 10% loss tolerable
#: ("humans move predictably") but past ~30% avatars visibly teleport.
MOTION_LOSS = PiecewiseCurve(
    [(0.0, 5.0), (0.02, 4.5), (0.10, 3.5), (0.30, 2.0), (0.60, 1.0)]
)
#: Seconds since *any* remote update arrived — a freeze detector.
MOTION_STALENESS_S = PiecewiseCurve(
    [(0.1, 5.0), (0.5, 4.5), (1.5, 3.0), (3.0, 2.0), (5.0, 1.0)]
)
#: Voice mouth-to-ear latency (milliseconds), G.114-shaped.
VOICE_LATENCY_MS = PiecewiseCurve(
    [(0.0, 5.0), (150.0, 4.5), (250.0, 3.5), (400.0, 2.0), (800.0, 1.0)]
)
#: Voice packet-loss fraction (concealment dies ~5%).
VOICE_LOSS = PiecewiseCurve(
    [(0.0, 5.0), (0.01, 4.5), (0.05, 3.0), (0.15, 2.0), (0.30, 1.0)]
)
#: World/session-state staleness (seconds since session-channel data).
WORLD_STALENESS_S = PiecewiseCurve(
    [(0.0, 5.0), (2.0, 4.5), (6.0, 3.5), (12.0, 2.0), (20.0, 1.0)]
)
#: Rendered frames per second; Quest 2 targets 72, comfort floor ~20.
RENDER_FPS = PiecewiseCurve(
    [(10.0, 1.0), (20.0, 2.0), (30.0, 3.0), (45.0, 4.0), (60.0, 5.0)]
)

#: Channel classes scored per window.
CHANNELS: typing.Tuple[str, ...] = ("motion", "voice", "world", "render")

#: Phase -> channel weights.  Rows need not renormalize here; scoring
#: renormalizes over the channels actually present in a window.
PHASE_WEIGHTS: typing.Dict[str, typing.Dict[str, float]] = {
    "lobby": {"motion": 0.15, "voice": 0.15, "world": 0.50, "render": 0.20},
    "world-switch": {"motion": 0.10, "voice": 0.10, "world": 0.60, "render": 0.20},
    "steady": {"motion": 0.40, "voice": 0.25, "world": 0.15, "render": 0.20},
    "dense-event": {"motion": 0.45, "voice": 0.15, "world": 0.10, "render": 0.30},
    "exit": {"motion": 0.0, "voice": 0.0, "world": 0.50, "render": 0.50},
}


@dataclasses.dataclass(frozen=True)
class ChannelSignals:
    """Raw QoS signals for one user over one scoring window.

    ``None`` means the signal (or its whole channel) was inactive in
    the window — e.g. voice on a muted testbed — and drops out of the
    combine with its weight renormalized away, rather than dragging the
    score down for traffic that was never supposed to flow.
    """

    motion_latency_ms: typing.Optional[float] = None
    motion_loss: typing.Optional[float] = None
    motion_staleness_s: typing.Optional[float] = None
    voice_latency_ms: typing.Optional[float] = None
    voice_loss: typing.Optional[float] = None
    world_staleness_s: typing.Optional[float] = None
    render_fps: typing.Optional[float] = None


@dataclasses.dataclass(frozen=True)
class QoeModel:
    """A full scoring model: per-channel curves + phase weights."""

    motion_latency: PiecewiseCurve = MOTION_LATENCY_MS
    motion_loss: PiecewiseCurve = MOTION_LOSS
    motion_staleness: PiecewiseCurve = MOTION_STALENESS_S
    voice_latency: PiecewiseCurve = VOICE_LATENCY_MS
    voice_loss: PiecewiseCurve = VOICE_LOSS
    world_staleness: PiecewiseCurve = WORLD_STALENESS_S
    render_fps: PiecewiseCurve = RENDER_FPS
    phase_weights: typing.Mapping = dataclasses.field(
        default_factory=lambda: PHASE_WEIGHTS
    )

    # ------------------------------------------------------------------
    # Channel scores
    # ------------------------------------------------------------------
    def channel_scores(
        self, signals: ChannelSignals
    ) -> typing.Dict[str, typing.Optional[float]]:
        """Score each channel as the *minimum* of its sub-curves.

        Min-combine within a channel matches how users judge a stream:
        perfect latency does not compensate for 50% loss.
        """

        def combine(*pairs) -> typing.Optional[float]:
            scores = [
                curve.score(value) for curve, value in pairs if value is not None
            ]
            return min(scores) if scores else None

        return {
            "motion": combine(
                (self.motion_latency, signals.motion_latency_ms),
                (self.motion_loss, signals.motion_loss),
                (self.motion_staleness, signals.motion_staleness_s),
            ),
            "voice": combine(
                (self.voice_latency, signals.voice_latency_ms),
                (self.voice_loss, signals.voice_loss),
            ),
            "world": combine((self.world_staleness, signals.world_staleness_s)),
            "render": combine((self.render_fps, signals.render_fps)),
        }

    def score(self, signals: ChannelSignals, phase: str) -> float:
        """One MOS score for a window: phase-weighted channel mean.

        Channels with no active signal drop out and the remaining
        weights renormalize; with *no* channel active the window scores
        a neutral :data:`MOS_MAX` (nothing was supposed to happen, so
        nothing was perceived as broken).
        """
        weights = self.phase_weights.get(phase)
        if weights is None:
            raise ValueError(f"unknown QoE phase {phase!r}; choose from {PHASES}")
        per_channel = self.channel_scores(signals)
        total_weight = 0.0
        weighted = 0.0
        for channel, channel_score in per_channel.items():
            weight = weights.get(channel, 0.0)
            if channel_score is None or weight <= 0.0:
                continue
            total_weight += weight
            weighted += weight * channel_score
        if total_weight <= 0.0:
            return MOS_MAX
        value = weighted / total_weight
        return round(min(MOS_MAX, max(MOS_MIN, value)), 6)


#: The shared default model used by probes, cells, and cohort scoring.
DEFAULT_MODEL = QoeModel()


def mos_label(score: float) -> str:
    """Human label for a MOS score (ITU ACR ladder)."""
    if score >= 4.3:
        return "excellent"
    if score >= 3.6:
        return "good"
    if score >= 2.8:
        return "fair"
    if score >= 1.8:
        return "poor"
    return "bad"
