"""Durable job queue: SQLite-backed, lease-based, crash-safe.

The control plane and its worker fleet share one ``queue.sqlite3``
file.  Durability and fault tolerance come from two properties:

* **WAL journaling** — submissions and state transitions survive a
  daemon crash; readers (API handler threads, other worker processes)
  never block a writer.
* **Leases with heartbeat expiry** — a worker does not *own* a job, it
  *leases* it for ``lease_s`` seconds and extends the lease from a
  heartbeat thread while the campaign runs.  A SIGKILLed or wedged
  worker simply stops heartbeating; once the lease expires the job is
  leasable again and another worker finishes it.  Because campaign
  tasks are deterministic and the artifact store is content-addressed,
  the rerun converges on byte-identical artifacts.

State machine::

    queued --lease--> running --complete--> done
      ^                  |  |---fail-----> failed
      |                  |  |---cancel---> cancelled
      +--lease expired---+        (queued jobs cancel directly)

A job whose lease expires ``max_attempts`` times is marked ``failed``
rather than looping forever (poison-job protection).
"""

from __future__ import annotations

import dataclasses
import json
import os
import sqlite3
import threading
import time
import typing
import uuid

QUEUE_FILENAME = "queue.sqlite3"

#: Job states. ``queued`` and expired-``running`` are leasable.
STATES = ("queued", "running", "done", "failed", "cancelled")
TERMINAL_STATES = ("done", "failed", "cancelled")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id               TEXT PRIMARY KEY,
    tenant           TEXT NOT NULL,
    spec             TEXT NOT NULL,
    campaign_id      TEXT NOT NULL,
    n_tasks          INTEGER NOT NULL,
    priority         INTEGER NOT NULL DEFAULT 0,
    state            TEXT NOT NULL DEFAULT 'queued',
    attempts         INTEGER NOT NULL DEFAULT 0,
    max_attempts     INTEGER NOT NULL DEFAULT 3,
    submitted_at     REAL NOT NULL,
    started_at       REAL,
    finished_at      REAL,
    lease_owner      TEXT,
    lease_expires_at REAL,
    live_url         TEXT,
    summary          TEXT,
    error            TEXT
);
CREATE INDEX IF NOT EXISTS jobs_by_state
    ON jobs (state, priority DESC, submitted_at);
"""


@dataclasses.dataclass
class Job:
    """One queued campaign, as the queue knows it."""

    id: str
    tenant: str
    spec: dict
    campaign_id: str
    n_tasks: int
    priority: int
    state: str
    attempts: int
    max_attempts: int
    submitted_at: float
    started_at: typing.Optional[float] = None
    finished_at: typing.Optional[float] = None
    lease_owner: typing.Optional[str] = None
    lease_expires_at: typing.Optional[float] = None
    live_url: typing.Optional[str] = None
    summary: typing.Optional[dict] = None
    error: typing.Optional[str] = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def as_dict(self) -> dict:
        view = dataclasses.asdict(self)
        view["terminal"] = self.terminal
        return view

    @classmethod
    def _from_row(cls, row: sqlite3.Row) -> "Job":
        return cls(
            id=row["id"],
            tenant=row["tenant"],
            spec=json.loads(row["spec"]),
            campaign_id=row["campaign_id"],
            n_tasks=row["n_tasks"],
            priority=row["priority"],
            state=row["state"],
            attempts=row["attempts"],
            max_attempts=row["max_attempts"],
            submitted_at=row["submitted_at"],
            started_at=row["started_at"],
            finished_at=row["finished_at"],
            lease_owner=row["lease_owner"],
            lease_expires_at=row["lease_expires_at"],
            live_url=row["live_url"],
            summary=json.loads(row["summary"]) if row["summary"] else None,
            error=row["error"],
        )


class JobQueue:
    """Thread-safe handle on the shared SQLite queue.

    Each process opens its own :class:`JobQueue` on the same path;
    within a process one instance may be shared by many threads (an
    internal lock serializes its connection).  Cross-process atomicity
    of the lease transition comes from ``BEGIN IMMEDIATE``.
    """

    def __init__(
        self,
        path: typing.Union[str, os.PathLike],
        max_attempts: int = 3,
        clock: typing.Callable[[], float] = time.time,
    ) -> None:
        self.path = os.fspath(path)
        self.max_attempts = max_attempts
        self._clock = clock
        self._lock = threading.RLock()
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        self._db = sqlite3.connect(
            self.path, timeout=30.0, check_same_thread=False
        )
        self._db.row_factory = sqlite3.Row
        with self._lock:
            self._db.execute("PRAGMA journal_mode=WAL")
            self._db.execute("PRAGMA synchronous=NORMAL")
            self._db.execute("PRAGMA busy_timeout=30000")
            self._db.executescript(_SCHEMA)
            self._db.commit()

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def submit(
        self,
        spec: typing.Mapping[str, typing.Any],
        *,
        tenant: str = "public",
        campaign_id: str = "",
        n_tasks: int = 0,
        priority: int = 0,
        max_attempts: typing.Optional[int] = None,
    ) -> Job:
        """Enqueue a (already validated) campaign spec; returns the job."""
        job_id = "job-" + uuid.uuid4().hex[:12]
        now = self._clock()
        with self._lock:
            self._db.execute(
                "INSERT INTO jobs (id, tenant, spec, campaign_id, n_tasks,"
                " priority, state, attempts, max_attempts, submitted_at)"
                " VALUES (?, ?, ?, ?, ?, ?, 'queued', 0, ?, ?)",
                (
                    job_id,
                    tenant,
                    json.dumps(dict(spec), sort_keys=True),
                    campaign_id,
                    n_tasks,
                    priority,
                    max_attempts if max_attempts is not None else self.max_attempts,
                    now,
                ),
            )
            self._db.commit()
        return typing.cast(Job, self.get(job_id))

    def cancel(self, job_id: str, tenant: typing.Optional[str] = None) -> typing.Optional[Job]:
        """Cancel a job.  Queued jobs cancel immediately; a running
        job is marked cancelled and its worker's eventual completion
        is discarded (the lease guard refuses the state transition).
        Terminal jobs are returned unchanged."""
        with self._lock:
            job = self.get(job_id, tenant=tenant)
            if job is None or job.terminal:
                return job
            self._db.execute(
                "UPDATE jobs SET state='cancelled', finished_at=?,"
                " lease_owner=NULL, lease_expires_at=NULL, live_url=NULL"
                " WHERE id=? AND state IN ('queued', 'running')",
                (self._clock(), job_id),
            )
            self._db.commit()
            return self.get(job_id, tenant=tenant)

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def lease(self, owner: str, lease_s: float) -> typing.Optional[Job]:
        """Atomically claim the next runnable job, or ``None``.

        Runnable means ``queued``, or ``running`` with an expired lease
        (its worker died).  Highest priority first, then FIFO.  A job
        that has already burned ``max_attempts`` leases is failed here
        instead of being handed out again.
        """
        now = self._clock()
        with self._lock:
            while True:
                self._db.execute("BEGIN IMMEDIATE")
                try:
                    row = self._db.execute(
                        "SELECT * FROM jobs WHERE state='queued'"
                        " OR (state='running' AND lease_expires_at < ?)"
                        " ORDER BY priority DESC, submitted_at, id LIMIT 1",
                        (now,),
                    ).fetchone()
                    if row is None:
                        self._db.commit()
                        return None
                    if row["attempts"] >= row["max_attempts"]:
                        self._db.execute(
                            "UPDATE jobs SET state='failed', finished_at=?,"
                            " lease_owner=NULL, lease_expires_at=NULL,"
                            " live_url=NULL, error=? WHERE id=?",
                            (
                                now,
                                f"gave up after {row['attempts']} expired or "
                                f"failed lease attempts",
                                row["id"],
                            ),
                        )
                        self._db.commit()
                        continue  # look for the next candidate
                    self._db.execute(
                        "UPDATE jobs SET state='running', attempts=attempts+1,"
                        " lease_owner=?, lease_expires_at=?,"
                        " started_at=COALESCE(started_at, ?), live_url=NULL"
                        " WHERE id=?",
                        (owner, now + lease_s, now, row["id"]),
                    )
                    self._db.commit()
                except BaseException:
                    self._db.rollback()
                    raise
                return self.get(row["id"])

    def heartbeat(self, job_id: str, owner: str, lease_s: float) -> bool:
        """Extend the lease; False when it was lost (expired and
        re-leased elsewhere, or the job was cancelled)."""
        with self._lock:
            cursor = self._db.execute(
                "UPDATE jobs SET lease_expires_at=?"
                " WHERE id=? AND lease_owner=? AND state='running'",
                (self._clock() + lease_s, job_id, owner),
            )
            self._db.commit()
            return cursor.rowcount == 1

    def set_live_url(self, job_id: str, owner: str, url: typing.Optional[str]) -> bool:
        """Publish the job's live observability endpoint (or clear it)."""
        with self._lock:
            cursor = self._db.execute(
                "UPDATE jobs SET live_url=?"
                " WHERE id=? AND lease_owner=? AND state='running'",
                (url, job_id, owner),
            )
            self._db.commit()
            return cursor.rowcount == 1

    def complete(self, job_id: str, owner: str, summary: typing.Mapping) -> bool:
        """Mark a leased job done.  Guarded by the lease: a zombie
        worker whose lease was re-assigned (or whose job was
        cancelled) gets ``False`` and its result is discarded."""
        return self._finish(job_id, owner, "done", summary=summary)

    def fail(self, job_id: str, owner: str, error: str,
             summary: typing.Optional[typing.Mapping] = None) -> bool:
        """Mark a leased job failed (terminal — lease expiry, not
        :meth:`fail`, is the retry path)."""
        return self._finish(job_id, owner, "failed", summary=summary, error=error)

    def _finish(
        self,
        job_id: str,
        owner: str,
        state: str,
        summary: typing.Optional[typing.Mapping] = None,
        error: typing.Optional[str] = None,
    ) -> bool:
        with self._lock:
            cursor = self._db.execute(
                "UPDATE jobs SET state=?, finished_at=?, summary=?, error=?,"
                " lease_owner=NULL, lease_expires_at=NULL, live_url=NULL"
                " WHERE id=? AND lease_owner=? AND state='running'",
                (
                    state,
                    self._clock(),
                    json.dumps(dict(summary), sort_keys=True) if summary else None,
                    error,
                    job_id,
                    owner,
                ),
            )
            self._db.commit()
            return cursor.rowcount == 1

    # ------------------------------------------------------------------
    # Introspection / recovery
    # ------------------------------------------------------------------
    def get(self, job_id: str, tenant: typing.Optional[str] = None) -> typing.Optional[Job]:
        with self._lock:
            row = self._db.execute(
                "SELECT * FROM jobs WHERE id=?", (job_id,)
            ).fetchone()
        if row is None:
            return None
        job = Job._from_row(row)
        if tenant is not None and job.tenant != tenant:
            return None  # namespace isolation: other tenants' jobs do not exist
        return job

    def list_jobs(
        self,
        tenant: typing.Optional[str] = None,
        state: typing.Optional[str] = None,
        limit: int = 200,
    ) -> typing.List[Job]:
        query = "SELECT * FROM jobs"
        clauses, params = [], []
        if tenant is not None:
            clauses.append("tenant=?")
            params.append(tenant)
        if state is not None:
            clauses.append("state=?")
            params.append(state)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY submitted_at DESC, id LIMIT ?"
        params.append(limit)
        with self._lock:
            rows = self._db.execute(query, params).fetchall()
        return [Job._from_row(row) for row in rows]

    def counts(self) -> typing.Dict[str, int]:
        with self._lock:
            rows = self._db.execute(
                "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"
            ).fetchall()
        counts = {state: 0 for state in STATES}
        counts.update({row["state"]: row["n"] for row in rows})
        return counts

    def recover(self) -> int:
        """Requeue every expired running job (daemon-restart path).

        :meth:`lease` would reclaim them lazily anyway; doing it
        eagerly at startup makes ``/jobs`` reflect reality immediately.
        Returns the number of jobs requeued.
        """
        with self._lock:
            cursor = self._db.execute(
                "UPDATE jobs SET state='queued', lease_owner=NULL,"
                " lease_expires_at=NULL, live_url=NULL"
                " WHERE state='running' AND lease_expires_at < ?",
                (self._clock(),),
            )
            self._db.commit()
            return cursor.rowcount

    def close(self) -> None:
        with self._lock:
            self._db.close()

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
