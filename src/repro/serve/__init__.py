"""repro.serve — simulation-as-a-service control plane.

ROADMAP item 2: the batch campaign engine promoted into a long-running
service.  A spool directory holds the whole deployment's state:

* :mod:`.queue` — durable SQLite job queue (WAL, priorities, leases
  with heartbeat expiry, crash-safe recovery);
* :mod:`.worker` — the fleet body: lease a job, run it through
  :func:`repro.runner.run_campaign`, persist artifacts, report back;
* :mod:`.store` — tenant-namespaced artifacts over the shared
  content-addressed result cache, so identical sub-campaigns dedupe
  across jobs and tenants;
* :mod:`.api` / :mod:`.client` — the stdlib REST control plane and a
  matching client;
* :mod:`.schema` — the campaign-spec JSON vocabulary (a direct mirror
  of :meth:`repro.runner.plan.CampaignPlan.from_matrix`).

Quickstart::

    from repro.serve import ServeDaemon, ServeClient

    with ServeDaemon("spool", n_workers=2) as daemon:
        client = ServeClient(daemon.url)
        job = client.submit({"experiments": ["throughput"], "seeds": 4})
        done = client.wait(job["id"])
        print(done["summary"]["cache_hits"], done["artifacts"])

or from a shell: ``python -m repro serve`` / ``submit`` / ``status`` /
``artifacts`` / ``worker`` (see docs/SERVE.md).
"""

from .api import ServeDaemon
from .client import ServeApiError, ServeClient
from .queue import Job, JobQueue
from .schema import SpecError, normalize_spec, plan_from_spec, validate_spec
from .store import ArtifactStore
from .worker import ServeWorker

__all__ = [
    "ArtifactStore",
    "Job",
    "JobQueue",
    "ServeApiError",
    "ServeClient",
    "ServeDaemon",
    "ServeWorker",
    "SpecError",
    "normalize_spec",
    "plan_from_spec",
    "validate_spec",
]
