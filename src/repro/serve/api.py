"""REST control plane: simulation-as-a-service over the job queue.

``ServeDaemon`` is the long-running face of the campaign engine — the
ROADMAP's "serving story": a stdlib :class:`ThreadingHTTPServer` (same
idiom as :mod:`repro.obs.live`, no web framework) in front of the
durable queue, an in-process worker fleet, and the deduplicating
artifact store.  Endpoints (all JSON unless noted)::

    GET  /healthz                        liveness + queue counts
    GET  /metrics                        Prometheus rollup folding every
                                         finished job's campaign
                                         registry (text exposition)
    GET  /v1/experiments                 the experiment registry
    POST /v1/jobs                        submit a campaign spec
    GET  /v1/jobs[?state=&limit=]        list this tenant's jobs
    GET  /v1/jobs/<id>                   inspect one job
    POST /v1/jobs/<id>/cancel            cancel it
    GET  /v1/jobs/<id>/artifacts         list artifact names + CAS map
    GET  /v1/jobs/<id>/artifacts/<name>  fetch artifact bytes
    GET  /v1/jobs/<id>/cas/<digest>      fetch a referenced CAS payload
    GET  /v1/jobs/<id>/live/metrics      proxy the running job's
    GET  /v1/jobs/<id>/live/progress     live observability plane
    GET  /v1/jobs/<id>/live/events       (SSE; ?limit= as usual)

Authentication is token-per-tenant: pass ``tokens={"secret": "acme"}``
(or repeatable ``--token acme=secret`` on the CLI) and requests must
carry ``Authorization: Bearer secret`` or ``X-Repro-Token: secret``.
With no tokens configured every request maps to the ``public`` tenant.
Tenants are namespaces: jobs and artifacts belonging to another tenant
answer 404, not 403 — their existence is not disclosed.
"""

from __future__ import annotations

import json
import os
import threading
import typing
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, unquote, urlparse

from .queue import QUEUE_FILENAME, Job, JobQueue
from .schema import SpecError, normalize_spec, plan_from_spec
from .store import ArtifactStore
from .worker import ServeWorker

DEFAULT_TENANT = "public"

#: Longest request body the API will read (campaign specs are small).
MAX_BODY_BYTES = 1 << 20


class ServeDaemon:
    """Queue + store + worker fleet + HTTP API, one process."""

    def __init__(
        self,
        spool: typing.Union[str, os.PathLike],
        host: str = "127.0.0.1",
        port: int = 0,
        n_workers: int = 1,
        tokens: typing.Optional[typing.Mapping[str, str]] = None,
        lease_s: float = 30.0,
        max_cache_bytes: typing.Optional[int] = None,
        live_workers: bool = True,
    ) -> None:
        self.spool = os.fspath(spool)
        self.tokens = dict(tokens or {})
        self.queue = JobQueue(os.path.join(self.spool, QUEUE_FILENAME))
        self.store = ArtifactStore(self.spool, max_cache_bytes=max_cache_bytes)
        self.recovered_jobs = self.queue.recover()  # crash-safe restart
        self._stop = threading.Event()
        self._workers = [
            ServeWorker(
                self.spool,
                worker_id=f"serve-{os.getpid()}-{index}",
                lease_s=lease_s,
                live=live_workers,
                queue=self.queue,
                store=self.store,
            )
            # n_workers=0 is a valid deployment: an API-only daemon
            # whose fleet joins from other processes (`repro worker`).
            for index in range(max(0, n_workers))
        ]
        self._worker_threads: typing.List[threading.Thread] = []
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self.host = host
        self.port = self._httpd.server_address[1]
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-serve-http", daemon=True
        )
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServeDaemon":
        if self._started:
            return self
        self._started = True
        self._serve_thread.start()
        for worker in self._workers:
            thread = threading.Thread(
                target=worker.run_forever,
                kwargs={"stop": self._stop},
                name=f"repro-serve-{worker.worker_id}",
                daemon=True,
            )
            thread.start()
            self._worker_threads.append(thread)
        return self

    def close(self) -> None:
        self._stop.set()
        self._httpd.shutdown()
        self._httpd.server_close()
        for thread in self._worker_threads:
            thread.join(timeout=5.0)
        self.queue.close()

    def __enter__(self) -> "ServeDaemon":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Operations (HTTP-independent, also used directly by tests)
    # ------------------------------------------------------------------
    def tenant_for_token(self, token: typing.Optional[str]) -> typing.Optional[str]:
        """Tenant for a request token; None means unauthorized."""
        if not self.tokens:
            return DEFAULT_TENANT
        if token is None:
            return None
        return self.tokens.get(token)

    def submit(self, spec: typing.Mapping, tenant: str) -> Job:
        """Validate, plan, and enqueue one campaign spec."""
        normalized = normalize_spec(spec)  # raises SpecError with details
        plan = plan_from_spec(normalized)
        job = self.queue.submit(
            normalized,
            tenant=tenant,
            campaign_id=plan.campaign_id,
            n_tasks=len(plan),
            priority=normalized["priority"],
        )
        self.store.write_spec(tenant, job.id, normalized)
        return job

    def job_view(self, job: Job) -> dict:
        """The API's JSON shape for one job."""
        view = job.as_dict()
        view["live"] = job.live_url is not None
        view.pop("live_url", None)  # workers bind loopback; reach via proxy
        if job.terminal:
            view["artifacts"] = self.store.list_artifacts(job.tenant, job.id)
        return view

    def fleet_metrics(self, tenant: str) -> typing.Tuple[str, int]:
        """Cross-job Prometheus rollup for one tenant's finished jobs.

        Folds every job's ``metrics/campaign_registry.json`` artifact
        (written by workers running with ``collect_obs``) through a
        :class:`~repro.obs.fleet.FleetAggregator`.  The fold is
        associative/commutative and jobs are visited in id order, so
        the text is deterministic for a given job set regardless of
        which workers ran what.  Returns ``(prometheus_text, n_jobs)``
        where ``n_jobs`` counts jobs that contributed a registry.
        """
        from ..obs.export import to_prometheus
        from ..obs.fleet import REGISTRY_FILENAME, FleetAggregator

        aggregator = FleetAggregator()
        n_jobs = 0
        jobs = self.queue.list_jobs(tenant=tenant, limit=-1)  # -1: no cap
        for job in sorted(jobs, key=lambda j: j.id):
            blob = self.store.read_artifact(
                job.tenant, job.id, os.path.join("metrics", REGISTRY_FILENAME)
            )
            if blob is None:
                continue
            try:
                dump = json.loads(blob.decode())
            except (ValueError, UnicodeDecodeError):
                continue  # partially-written artifact; skip, don't 500
            aggregator.add_dump(dump)
            n_jobs += 1
        text = to_prometheus(aggregator.merged_registry())
        meta = (
            "# TYPE repro_serve_jobs_aggregated gauge\n"
            f"repro_serve_jobs_aggregated {n_jobs}\n"
        )
        return text + meta, n_jobs


def _make_handler(daemon: ServeDaemon):
    class _Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, *args) -> None:  # pragma: no cover - quiet
            pass

        # -- plumbing --------------------------------------------------
        def _send_json(self, payload: dict, status: int = 200) -> None:
            body = (json.dumps(payload, sort_keys=True) + "\n").encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _send_bytes(self, body: bytes, content_type: str) -> None:
            self.send_response(200)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _error(self, status: int, message: str, **extra) -> None:
            payload = {"error": message}
            payload.update(extra)
            self._send_json(payload, status=status)

        def _tenant(self) -> typing.Optional[str]:
            token = self.headers.get("X-Repro-Token")
            if token is None:
                auth = self.headers.get("Authorization", "")
                if auth.startswith("Bearer "):
                    token = auth[len("Bearer "):].strip()
            tenant = daemon.tenant_for_token(token)
            if tenant is None:
                self._error(401, "missing or unknown API token")
            return tenant

        def _read_body(self) -> typing.Optional[dict]:
            try:
                length = int(self.headers.get("Content-Length", 0))
            except ValueError:
                length = 0
            if length <= 0 or length > MAX_BODY_BYTES:
                self._error(400, "request body required (JSON campaign spec)")
                return None
            raw = self.rfile.read(length)
            try:
                body = json.loads(raw.decode())
            except (ValueError, UnicodeDecodeError):
                self._error(400, "request body is not valid JSON")
                return None
            return body

        def _job_or_404(self, tenant: str, job_id: str) -> typing.Optional[Job]:
            job = daemon.queue.get(job_id, tenant=tenant)
            if job is None:
                self._error(404, f"no job {job_id!r}")
            return job

        # -- routing ---------------------------------------------------
        def do_GET(self) -> None:  # noqa: N802 - http.server API
            try:
                self._route("GET")
            except (BrokenPipeError, ConnectionResetError):  # client left
                pass

        def do_POST(self) -> None:  # noqa: N802 - http.server API
            try:
                self._route("POST")
            except (BrokenPipeError, ConnectionResetError):
                pass

        def _route(self, method: str) -> None:
            parsed = urlparse(self.path)
            # Artifact names may hold URL-significant characters
            # (metrics dumps embed '#'); clients percent-encode them.
            parts = [unquote(p) for p in parsed.path.split("/") if p]
            query = parse_qs(parsed.query)
            if method == "GET" and parts in ([], ["healthz"]):
                self._send_json(
                    {
                        "status": "ok",
                        "jobs": daemon.queue.counts(),
                        "recovered_jobs": daemon.recovered_jobs,
                    }
                )
                return
            tenant = self._tenant()
            if tenant is None:
                return
            if method == "GET" and parts == ["metrics"]:
                text, _ = daemon.fleet_metrics(tenant)
                self._send_bytes(
                    text.encode(), "text/plain; version=0.0.4"
                )
                return
            if not parts or parts[0] != "v1":
                self._error(404, "unknown route (API lives under /v1)")
                return
            rest = parts[1:]
            if method == "GET" and rest == ["experiments"]:
                from ..measure.experiment import list_experiments

                self._send_json(
                    {
                        "experiments": [
                            {
                                "name": spec.name,
                                "artifact": spec.artifact,
                                "description": spec.description,
                            }
                            for spec in list_experiments()
                        ]
                    }
                )
            elif rest == ["jobs"] and method == "POST":
                self._submit(tenant)
            elif rest == ["jobs"] and method == "GET":
                self._list_jobs(tenant, query)
            elif len(rest) == 2 and rest[0] == "jobs" and method == "GET":
                job = self._job_or_404(tenant, rest[1])
                if job is not None:
                    self._send_json(daemon.job_view(job))
            elif (
                len(rest) == 3
                and rest[0] == "jobs"
                and rest[2] == "cancel"
                and method == "POST"
            ):
                job = self._job_or_404(tenant, rest[1])
                if job is not None:
                    cancelled = daemon.queue.cancel(job.id, tenant=tenant)
                    self._send_json(daemon.job_view(cancelled or job))
            elif (
                len(rest) == 3
                and rest[0] == "jobs"
                and rest[2] == "artifacts"
                and method == "GET"
            ):
                job = self._job_or_404(tenant, rest[1])
                if job is not None:
                    self._send_json(
                        {
                            "job_id": job.id,
                            "artifacts": daemon.store.list_artifacts(tenant, job.id),
                            "cas": daemon.store.manifest(tenant, job.id),
                        }
                    )
            elif (
                len(rest) >= 4
                and rest[0] == "jobs"
                and rest[2] == "artifacts"
                and method == "GET"
            ):
                self._fetch_artifact(tenant, rest[1], "/".join(rest[3:]))
            elif (
                len(rest) == 4
                and rest[0] == "jobs"
                and rest[2] == "cas"
                and method == "GET"
            ):
                self._fetch_cas(tenant, rest[1], rest[3])
            elif (
                len(rest) == 4
                and rest[0] == "jobs"
                and rest[2] == "live"
                and method == "GET"
            ):
                self._proxy_live(tenant, rest[1], rest[3], parsed.query)
            else:
                self._error(404, "unknown route")

        # -- handlers --------------------------------------------------
        def _submit(self, tenant: str) -> None:
            body = self._read_body()
            if body is None:
                return
            try:
                job = daemon.submit(body, tenant)
            except SpecError as exc:
                self._error(400, "invalid campaign spec", errors=exc.errors)
                return
            self._send_json(daemon.job_view(job), status=201)

        def _list_jobs(self, tenant: str, query: dict) -> None:
            state = query.get("state", [None])[0]
            try:
                limit = int(query.get("limit", [200])[0])
            except ValueError:
                limit = 200
            jobs = daemon.queue.list_jobs(tenant=tenant, state=state, limit=limit)
            self._send_json({"jobs": [daemon.job_view(job) for job in jobs]})

        def _fetch_artifact(self, tenant: str, job_id: str, name: str) -> None:
            if self._job_or_404(tenant, job_id) is None:
                return
            blob = daemon.store.read_artifact(tenant, job_id, name)
            if blob is None:
                self._error(404, f"no artifact {name!r} for job {job_id!r}")
                return
            content_type = (
                "application/json"
                if name.endswith(".json")
                else "application/x-ndjson"
                if name.endswith(".jsonl")
                else "application/octet-stream"
            )
            self._send_bytes(blob, content_type)

        def _fetch_cas(self, tenant: str, job_id: str, digest: str) -> None:
            if self._job_or_404(tenant, job_id) is None:
                return
            blob = daemon.store.read_cas_payload(tenant, job_id, digest)
            if blob is None:
                if digest in set(daemon.store.manifest(tenant, job_id).values()):
                    self._error(
                        410, f"CAS entry {digest} was evicted by the size cap"
                    )
                else:
                    self._error(404, f"job {job_id!r} references no CAS entry {digest}")
                return
            self._send_bytes(blob, "application/octet-stream")

        def _proxy_live(
            self, tenant: str, job_id: str, endpoint: str, query: str
        ) -> None:
            if endpoint not in ("metrics", "progress", "events"):
                self._error(404, "live endpoints: metrics, progress, events")
                return
            job = self._job_or_404(tenant, job_id)
            if job is None:
                return
            if job.state != "running" or not job.live_url:
                self._error(
                    409,
                    f"job {job_id!r} is {job.state} without a live plane "
                    "(live attaches to at most one running job per worker "
                    "process; artifacts remain available either way)",
                )
                return
            upstream = f"{job.live_url}/{endpoint}"
            if query:
                upstream += f"?{query}"
            try:
                response = urllib.request.urlopen(upstream, timeout=30)
            except (urllib.error.URLError, OSError):
                self._error(409, f"job {job_id!r} live plane is gone (job finished?)")
                return
            with response:
                self.send_response(response.status)
                self.send_header(
                    "Content-Type",
                    response.headers.get("Content-Type", "application/octet-stream"),
                )
                self.send_header("Connection", "close")
                self.end_headers()
                while True:
                    chunk = response.read(8192)
                    if not chunk:
                        break
                    self.wfile.write(chunk)
                self.wfile.flush()

    return _Handler
