"""Worker fleet: lease jobs, run campaigns, persist artifacts.

A :class:`ServeWorker` is the body between the durable queue and the
existing campaign executor: it leases one job at a time, rebuilds the
plan from the stored spec, runs it through
:func:`repro.runner.run_campaign` against the spool's shared
content-addressed cache (so identical sub-campaigns dedupe across jobs
and tenants), writes the artifact set, and reports the terminal state
back to the queue.

Workers are location-transparent: the serve daemon runs a few as
threads, and ``python -m repro worker --spool DIR`` joins the same
fleet from another process (or machine sharing the spool) — the lease
protocol, not process topology, provides mutual exclusion.  While a
campaign runs, a heartbeat thread extends the job lease; a worker that
dies simply stops heartbeating and the job is re-leased elsewhere.

Every artifact a job produces is stamped with correlation ids: the
plan-derived ``campaign_id`` plus the queue's ``job_id`` ride in every
telemetry event (and therefore every live SSE frame), in
``results.json``/``manifest.json``/``summary.json``, and in each
per-task metrics dump.
"""

from __future__ import annotations

import contextlib
import os
import threading
import time
import typing

from ..runner import TelemetryWriter, run_campaign
from .queue import QUEUE_FILENAME, Job, JobQueue
from .schema import SpecError, normalize_spec, plan_from_spec
from .store import ArtifactStore

#: One live observability plane per process: run_campaign feeds the
#: process-global active server, so concurrent worker threads take
#: turns — the holder's job gets /live/* proxying, the others still
#: run (and still write artifacts) without a live plane.
_LIVE_SLOT = threading.Lock()


class ServeWorker:
    """Leases and executes jobs from a spool directory's queue."""

    def __init__(
        self,
        spool: typing.Union[str, os.PathLike],
        worker_id: typing.Optional[str] = None,
        lease_s: float = 30.0,
        heartbeat_s: typing.Optional[float] = None,
        poll_s: float = 0.25,
        live: bool = False,
        queue: typing.Optional[JobQueue] = None,
        store: typing.Optional[ArtifactStore] = None,
        max_cache_bytes: typing.Optional[int] = None,
    ) -> None:
        self.spool = os.fspath(spool)
        self.worker_id = worker_id or f"worker-{os.getpid()}-{id(self):x}"
        self.lease_s = lease_s
        self.heartbeat_s = heartbeat_s or max(lease_s / 3.0, 0.05)
        self.poll_s = poll_s
        self.live = live
        self.queue = queue or JobQueue(os.path.join(self.spool, QUEUE_FILENAME))
        self.store = store or ArtifactStore(
            self.spool, max_cache_bytes=max_cache_bytes
        )
        self.jobs_run = 0

    # ------------------------------------------------------------------
    # Loop
    # ------------------------------------------------------------------
    def run_once(self) -> typing.Optional[Job]:
        """Lease and run at most one job; the terminal job or ``None``."""
        job = self.queue.lease(self.worker_id, self.lease_s)
        if job is None:
            return None
        self._run_job(job)
        self.jobs_run += 1
        return self.queue.get(job.id)

    def run_forever(
        self,
        stop: typing.Optional[threading.Event] = None,
        max_jobs: typing.Optional[int] = None,
    ) -> int:
        """Poll-lease-run until ``stop`` is set (or ``max_jobs`` done)."""
        done = 0
        while (stop is None or not stop.is_set()) and (
            max_jobs is None or done < max_jobs
        ):
            if self.run_once() is None:
                if stop is not None:
                    stop.wait(self.poll_s)
                else:
                    time.sleep(self.poll_s)
                continue
            done += 1
        return done

    # ------------------------------------------------------------------
    # One job
    # ------------------------------------------------------------------
    def _run_job(self, job: Job) -> None:
        try:
            spec = normalize_spec(job.spec)
            plan = plan_from_spec(spec)
        except SpecError as exc:
            # Validation normally happens at submission; this is the
            # out-of-process-worker path where registries may differ.
            self.queue.fail(job.id, self.worker_id, f"invalid spec: {exc}")
            return

        stop_heartbeat = threading.Event()
        heartbeat = threading.Thread(
            target=self._heartbeat_loop,
            args=(job.id, stop_heartbeat),
            name=f"repro-serve-heartbeat-{job.id}",
            daemon=True,
        )
        heartbeat.start()
        try:
            telemetry = TelemetryWriter(
                self.store.telemetry_path(job.tenant, job.id),
                context={
                    "campaign_id": plan.campaign_id,
                    "job_id": job.id,
                    "worker": self.worker_id,
                },
            )
            metrics_dir = (
                self.store.metrics_dir(job.tenant, job.id)
                if spec["collect_obs"]
                else None
            )
            with contextlib.ExitStack() as stack:
                stack.enter_context(telemetry)
                self._maybe_attach_live(stack, job)
                campaign = run_campaign(
                    plan,
                    parallel=spec["parallel"],
                    max_workers=spec["max_workers"],
                    timeout_s=spec["timeout_s"],
                    max_retries=spec["max_retries"],
                    cache_dir=self.store.cas_dir,
                    use_cache=True,
                    telemetry=telemetry,
                    metrics_dir=metrics_dir,
                )
            artifacts = self.store.write_results(job.tenant, job.id, plan, campaign)
            summary = campaign.summary.as_dict()
            summary["campaign_id"] = plan.campaign_id
            summary["artifacts"] = artifacts
            if campaign.ok:
                self.queue.complete(job.id, self.worker_id, summary)
            else:
                reasons = "; ".join(
                    f"{failure.spec.task_id}: {failure.error}"
                    for failure in campaign.failures[:5]
                )
                self.queue.fail(
                    job.id,
                    self.worker_id,
                    f"{len(campaign.failures)} task(s) failed: {reasons}",
                    summary=summary,
                )
        except Exception as exc:  # noqa: BLE001 - job code is arbitrary
            self.queue.fail(
                job.id, self.worker_id, f"{type(exc).__name__}: {exc}"
            )
        finally:
            stop_heartbeat.set()
            heartbeat.join(timeout=2.0)

    def _heartbeat_loop(self, job_id: str, stop: threading.Event) -> None:
        while not stop.wait(self.heartbeat_s):
            if not self.queue.heartbeat(job_id, self.worker_id, self.lease_s):
                # Lease lost (expired and re-assigned, or cancelled).
                # The campaign cannot be aborted mid-flight, but the
                # queue's lease guard will discard our completion.
                return

    def _maybe_attach_live(self, stack: contextlib.ExitStack, job: Job) -> None:
        """Attach a per-job live observability plane when available."""
        if not self.live or not _LIVE_SLOT.acquire(blocking=False):
            return
        stack.callback(_LIVE_SLOT.release)
        try:
            from ..obs.live import live_server

            server = stack.enter_context(live_server(port=0))
        except OSError:  # pragma: no cover - no loopback available
            return
        self.queue.set_live_url(job.id, self.worker_id, server.url)


def worker_main(
    spool: str,
    max_jobs: typing.Optional[int] = None,
    lease_s: float = 30.0,
    live: bool = False,
    poll_s: float = 0.25,
) -> int:
    """Blocking entry point for ``python -m repro worker``."""
    worker = ServeWorker(spool, lease_s=lease_s, live=live, poll_s=poll_s)
    try:
        return worker.run_forever(max_jobs=max_jobs)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        return worker.jobs_run
