"""Stdlib HTTP client for the serve control plane.

Thin, dependency-free wrapper used by the ``python -m repro
submit/status/artifacts`` subcommands, the examples, and the tests —
anything that would otherwise hand-roll ``urllib`` calls against
:mod:`repro.serve.api`.  Errors surface as :class:`ServeApiError`
carrying the HTTP status and the API's JSON error body.
"""

from __future__ import annotations

import json
import time
import typing
import urllib.error
import urllib.parse
import urllib.request


class ServeApiError(RuntimeError):
    """An API call failed; ``status`` and ``body`` carry the details."""

    def __init__(self, status: int, body: typing.Any) -> None:
        message = body.get("error") if isinstance(body, dict) else str(body)
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.body = body


class ServeClient:
    """One control-plane endpoint plus (optionally) a tenant token."""

    def __init__(
        self,
        base_url: str,
        token: typing.Optional[str] = None,
        timeout_s: float = 30.0,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.token = token
        self.timeout_s = timeout_s

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _request(
        self,
        path: str,
        method: str = "GET",
        payload: typing.Optional[dict] = None,
    ) -> typing.Tuple[int, bytes, str]:
        request = urllib.request.Request(
            self.base_url + path, method=method
        )
        if self.token:
            request.add_header("X-Repro-Token", self.token)
        data = None
        if payload is not None:
            data = json.dumps(payload).encode()
            request.add_header("Content-Type", "application/json")
        try:
            with urllib.request.urlopen(
                request, data=data, timeout=self.timeout_s
            ) as response:
                return (
                    response.status,
                    response.read(),
                    response.headers.get("Content-Type", ""),
                )
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                body = json.loads(raw.decode())
            except (ValueError, UnicodeDecodeError):
                body = raw.decode(errors="replace")
            raise ServeApiError(exc.code, body) from None

    def _json(self, path: str, method: str = "GET",
              payload: typing.Optional[dict] = None) -> dict:
        _, body, _ = self._request(path, method=method, payload=payload)
        return json.loads(body.decode())

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------
    def health(self) -> dict:
        return self._json("/healthz")

    def metrics(self) -> str:
        """The daemon's cross-job Prometheus rollup (text exposition)."""
        _, body, _ = self._request("/metrics")
        return body.decode()

    def experiments(self) -> typing.List[dict]:
        return self._json("/v1/experiments")["experiments"]

    def submit(self, spec: typing.Mapping) -> dict:
        """Submit a campaign spec; returns the created job view."""
        return self._json("/v1/jobs", method="POST", payload=dict(spec))

    def jobs(self, state: typing.Optional[str] = None) -> typing.List[dict]:
        path = "/v1/jobs" + (f"?state={state}" if state else "")
        return self._json(path)["jobs"]

    def job(self, job_id: str) -> dict:
        return self._json(f"/v1/jobs/{job_id}")

    def cancel(self, job_id: str) -> dict:
        return self._json(f"/v1/jobs/{job_id}/cancel", method="POST")

    def artifacts(self, job_id: str) -> dict:
        """``{"artifacts": [names], "cas": {task_id: digest}}``."""
        return self._json(f"/v1/jobs/{job_id}/artifacts")

    def fetch_artifact(self, job_id: str, name: str) -> bytes:
        # Artifact names can carry URL-significant characters (per-task
        # metrics dumps embed '#'); encode each path segment.
        quoted = "/".join(
            urllib.parse.quote(part, safe="") for part in name.split("/")
        )
        _, body, _ = self._request(f"/v1/jobs/{job_id}/artifacts/{quoted}")
        return body

    def fetch_cas(self, job_id: str, digest: str) -> bytes:
        _, body, _ = self._request(f"/v1/jobs/{job_id}/cas/{digest}")
        return body

    def live(self, job_id: str, endpoint: str, query: str = "") -> bytes:
        """Raw bytes from the job's proxied live plane endpoint."""
        path = f"/v1/jobs/{job_id}/live/{endpoint}"
        if query:
            path += f"?{query}"
        _, body, _ = self._request(path)
        return body

    def wait(
        self,
        job_id: str,
        timeout_s: float = 600.0,
        poll_s: float = 0.25,
        on_poll: typing.Optional[typing.Callable[[dict], None]] = None,
    ) -> dict:
        """Poll until the job reaches a terminal state."""
        deadline = time.monotonic() + timeout_s
        while True:
            job = self.job(job_id)
            if on_poll is not None:
                on_poll(job)
            if job.get("terminal"):
                return job
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {job.get('state')!r} "
                    f"after {timeout_s:.0f}s"
                )
            time.sleep(poll_s)
