"""Campaign-spec schema: validate a JSON job body into a runner plan.

A submitted job is a JSON document mirroring
:meth:`repro.runner.plan.CampaignPlan.from_matrix` — the same matrix
shape the CLI builds from ``--experiments/--param/--seeds``, so every
registered cell type (plain measurement experiments, ``chaos`` fault
cells, ``qoe-score`` cells, ``metaverse-scale`` projections) submits
through one vocabulary::

    {
      "experiments": ["throughput", "forwarding"],     # required
      "grid":        {"platforms": [["vrchat"], ["worlds"]]},
      "seeds":       2,            # count N | "A:B" range | [ints]
      "base_kwargs": {"duration_s": 20.0},
      "priority":    5,            # higher leases first
      "parallel":    true,
      "max_workers": 4,
      "timeout_s":   120.0,
      "max_retries": 2,
      "collect_obs": false         # per-task obs dumps as artifacts
    }

Validation is deliberately schema-first: :func:`validate_spec` returns
*every* problem at once (unknown keys, wrong types, unknown experiment
names, empty seed ranges) so the API can answer a bad submission with
one complete 400 body instead of a guess-and-resubmit loop.
"""

from __future__ import annotations

import typing

from ..measure.experiment import get_experiment
from ..runner import CampaignPlan

#: Every key a campaign spec may carry, with its expected shape.
SPEC_KEYS = (
    "experiments",
    "grid",
    "seeds",
    "base_kwargs",
    "priority",
    "parallel",
    "max_workers",
    "timeout_s",
    "max_retries",
    "collect_obs",
)

DEFAULTS: typing.Dict[str, typing.Any] = {
    "grid": {},
    "seeds": [0],
    "base_kwargs": {},
    "priority": 0,
    "parallel": True,
    "max_workers": None,
    "timeout_s": None,
    "max_retries": 2,
    "collect_obs": False,
}


class SpecError(ValueError):
    """A campaign spec failed validation; ``errors`` lists every issue."""

    def __init__(self, errors: typing.Sequence[str]) -> None:
        super().__init__("; ".join(errors))
        self.errors = list(errors)


def parse_seeds(value: typing.Any) -> typing.List[int]:
    """Seed vocabulary shared with the CLI: count, ``A:B`` range, or list."""
    if isinstance(value, bool):
        raise ValueError("seeds must be a count, an 'A:B' range, or a list")
    if isinstance(value, int):
        seeds = list(range(value))
    elif isinstance(value, str):
        if ":" in value:
            start, _, stop = value.partition(":")
            seeds = list(range(int(start), int(stop)))
        else:
            seeds = list(range(int(value)))
    elif isinstance(value, list) and all(
        isinstance(s, int) and not isinstance(s, bool) for s in value
    ):
        seeds = list(value)
    else:
        raise ValueError("seeds must be a count, an 'A:B' range, or a list of ints")
    if not seeds:
        raise ValueError("seeds selects no seeds")
    return seeds


def validate_spec(spec: typing.Any) -> typing.List[str]:
    """Every problem with ``spec``, as human-readable strings."""
    if not isinstance(spec, dict):
        return ["spec must be a JSON object"]
    errors = []
    for key in spec:
        if key not in SPEC_KEYS:
            errors.append(f"unknown spec key {key!r}")
    experiments = spec.get("experiments")
    if not isinstance(experiments, list) or not experiments:
        errors.append("'experiments' must be a non-empty list of registry names")
    else:
        for name in experiments:
            if not isinstance(name, str):
                errors.append(f"experiment name {name!r} is not a string")
                continue
            try:
                get_experiment(name)
            except KeyError as exc:
                errors.append(str(exc.args[0]))
    grid = spec.get("grid", DEFAULTS["grid"])
    if not isinstance(grid, dict):
        errors.append("'grid' must map parameter names to value lists")
    else:
        for axis, values in grid.items():
            if not isinstance(values, list) or not values:
                errors.append(f"grid axis {axis!r} must be a non-empty list")
    if not isinstance(spec.get("base_kwargs", DEFAULTS["base_kwargs"]), dict):
        errors.append("'base_kwargs' must be an object")
    try:
        parse_seeds(spec.get("seeds", DEFAULTS["seeds"]))
    except (ValueError, TypeError) as exc:
        errors.append(f"'seeds': {exc}")
    for key in ("priority", "max_retries"):
        value = spec.get(key, DEFAULTS[key])
        if not isinstance(value, int) or isinstance(value, bool):
            errors.append(f"{key!r} must be an integer")
    for key in ("parallel", "collect_obs"):
        if not isinstance(spec.get(key, DEFAULTS[key]), bool):
            errors.append(f"{key!r} must be a boolean")
    max_workers = spec.get("max_workers", None)
    if max_workers is not None and (
        not isinstance(max_workers, int)
        or isinstance(max_workers, bool)
        or max_workers < 1
    ):
        errors.append("'max_workers' must be a positive integer or null")
    timeout_s = spec.get("timeout_s", None)
    if timeout_s is not None and (
        isinstance(timeout_s, bool)
        or not isinstance(timeout_s, (int, float))
        or timeout_s <= 0
    ):
        errors.append("'timeout_s' must be a positive number or null")
    return errors


def normalize_spec(spec: typing.Mapping[str, typing.Any]) -> dict:
    """Spec with defaults applied and seeds expanded to an explicit list.

    The normalized form is what the queue persists, so a worker from
    any process rebuilds exactly the plan the submitter validated.
    """
    errors = validate_spec(spec)
    if errors:
        raise SpecError(errors)
    normalized = dict(DEFAULTS)
    normalized.update(spec)
    normalized["seeds"] = parse_seeds(normalized["seeds"])
    normalized["experiments"] = list(normalized["experiments"])
    return normalized


def plan_from_spec(spec: typing.Mapping[str, typing.Any]) -> CampaignPlan:
    """Expand a (validated or raw) spec into runner tasks."""
    normalized = normalize_spec(spec)
    return CampaignPlan.from_matrix(
        normalized["experiments"],
        grid=normalized["grid"],
        seeds=normalized["seeds"],
        base_kwargs=normalized["base_kwargs"] or None,
    )
