"""Artifact store: tenant-namespaced job artifacts over a shared CAS.

Layout under the spool directory::

    spool/
      queue.sqlite3                  (the job queue — not the store's)
      cas/                           shared content-addressed result
                                     cache (repro.runner.cache), keyed
                                     by task identity — THE dedupe
                                     layer: identical sub-campaigns
                                     from any tenant resolve to the
                                     same entries
      tenants/<tenant>/jobs/<job>/
        spec.json                    normalized spec as submitted
        results.json                 deterministic per-task results
        manifest.json                task -> CAS digest map
        summary.json                 runner accounting (cache_hits, …)
        telemetry.jsonl              runner telemetry (timestamped)
        metrics/                     per-task obs dumps (collect_obs)

``results.json`` and ``manifest.json`` are derived purely from the
plan content and the (deterministic) task values, so resubmitting an
identical spec — even after a worker crash mid-job — reproduces them
byte-for-byte; that is the guarantee the dedupe acceptance test pins.
``summary.json`` and ``telemetry.jsonl`` carry wall-clock accounting
and are explicitly outside the byte-identity contract.

Tenant isolation is structural: every lookup takes the tenant and
resolves inside ``tenants/<tenant>/`` only, and CAS payload fetches
are validated against the job's manifest — a tenant can only read CAS
entries its own jobs reference (even though storage is shared).
"""

from __future__ import annotations

import dataclasses
import json
import os
import typing

from ..runner import CampaignResult, ResultCache, TaskSpec
from ..runner.plan import CampaignPlan

CAS_DIRNAME = "cas"

#: Artifacts inside the byte-identity contract (content-derived only).
DETERMINISTIC_ARTIFACTS = ("results.json", "manifest.json")


def _jsonable(value: typing.Any) -> typing.Any:
    """A canonical JSON view of an arbitrary task result.

    Dataclasses become objects, mappings/sequences recurse, and
    anything else falls back to ``repr`` — stable for the value types
    experiments return, which is all byte-identity needs.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


def _write_canonical_json(path: str, payload: dict) -> None:
    """Atomic, canonical JSON write (sorted keys, fixed separators)."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    tmp = path + f".tmp.{os.getpid()}"
    with open(tmp, "w") as handle:
        handle.write(blob + "\n")
    os.replace(tmp, path)


class ArtifactStore:
    """Per-job artifact directories over one shared result CAS."""

    def __init__(
        self,
        root: typing.Union[str, os.PathLike],
        max_cache_bytes: typing.Optional[int] = None,
    ) -> None:
        self.root = os.fspath(root)
        os.makedirs(self.root, exist_ok=True)
        self.cache = ResultCache(
            os.path.join(self.root, CAS_DIRNAME), max_bytes=max_cache_bytes
        )

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    @property
    def cas_dir(self) -> str:
        return self.cache.root

    def job_dir(self, tenant: str, job_id: str, create: bool = False) -> str:
        for part in (tenant, job_id):
            if not part or os.sep in part or part in (".", "..") or "/" in part:
                raise ValueError(f"unsafe path component {part!r}")
        path = os.path.join(self.root, "tenants", tenant, "jobs", job_id)
        if create:
            os.makedirs(path, exist_ok=True)
        return path

    def telemetry_path(self, tenant: str, job_id: str) -> str:
        return os.path.join(self.job_dir(tenant, job_id, create=True), "telemetry.jsonl")

    def metrics_dir(self, tenant: str, job_id: str) -> str:
        return os.path.join(self.job_dir(tenant, job_id, create=True), "metrics")

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def write_spec(self, tenant: str, job_id: str, spec: typing.Mapping) -> str:
        path = os.path.join(self.job_dir(tenant, job_id, create=True), "spec.json")
        _write_canonical_json(path, dict(spec))
        return path

    def write_results(
        self,
        tenant: str,
        job_id: str,
        plan: CampaignPlan,
        campaign: CampaignResult,
    ) -> typing.List[str]:
        """Persist one finished campaign's artifacts; returns names.

        ``results.json`` and ``manifest.json`` are canonical and
        content-derived (plan order, task identity, task values);
        ``summary.json`` carries the wall-clock accounting, including
        the per-job ``cache_hits`` the API reports.
        """
        job_dir = self.job_dir(tenant, job_id, create=True)
        campaign_id = plan.campaign_id
        tasks = []
        manifest = {}
        for task_result in campaign.task_results:
            spec = task_result.spec
            digest = spec.cache_key()
            manifest[spec.task_id] = digest
            tasks.append(
                {
                    "task_id": spec.task_id,
                    "experiment": spec.experiment,
                    "seed": spec.seed,
                    "params": _jsonable(spec.kwargs_dict),
                    "cache_key": digest,
                    "status": task_result.status,
                    "value": _jsonable(task_result.value),
                    "error": task_result.error,
                }
            )
        _write_canonical_json(
            os.path.join(job_dir, "results.json"),
            {"schema": 1, "campaign_id": campaign_id, "tasks": tasks},
        )
        _write_canonical_json(
            os.path.join(job_dir, "manifest.json"),
            {"schema": 1, "campaign_id": campaign_id, "tasks": manifest},
        )
        summary = campaign.summary.as_dict()
        summary["campaign_id"] = campaign_id
        summary["job_id"] = job_id
        _write_canonical_json(os.path.join(job_dir, "summary.json"), summary)
        return self.list_artifacts(tenant, job_id)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def list_artifacts(self, tenant: str, job_id: str) -> typing.List[str]:
        """Relative artifact paths for one job (sorted, recursive)."""
        job_dir = self.job_dir(tenant, job_id)
        if not os.path.isdir(job_dir):
            return []
        names = []
        for dirpath, _, files in os.walk(job_dir):
            for name in files:
                full = os.path.join(dirpath, name)
                names.append(os.path.relpath(full, job_dir))
        return sorted(names)

    def read_artifact(self, tenant: str, job_id: str, name: str) -> typing.Optional[bytes]:
        """One artifact's bytes, or ``None``; traversal-safe."""
        job_dir = os.path.realpath(self.job_dir(tenant, job_id))
        path = os.path.realpath(os.path.join(job_dir, name))
        if not (path == job_dir or path.startswith(job_dir + os.sep)):
            return None
        try:
            with open(path, "rb") as handle:
                return handle.read()
        except (FileNotFoundError, IsADirectoryError):
            return None

    def manifest(self, tenant: str, job_id: str) -> typing.Dict[str, str]:
        """The job's ``task_id -> CAS digest`` map (empty before run)."""
        blob = self.read_artifact(tenant, job_id, "manifest.json")
        if blob is None:
            return {}
        try:
            return dict(json.loads(blob.decode()).get("tasks", {}))
        except (ValueError, AttributeError):
            return {}

    def read_cas_payload(
        self, tenant: str, job_id: str, digest: str
    ) -> typing.Optional[bytes]:
        """Raw CAS pickle bytes for a digest *this job references*.

        Returns ``None`` for digests outside the job's manifest (the
        tenant-isolation guard) and for entries the LRU cap already
        evicted (the caller should distinguish via :meth:`manifest`).
        """
        if digest not in set(self.manifest(tenant, job_id).values()):
            return None
        path = os.path.join(self.cas_dir, digest[:2], digest + ".pkl")
        if not os.path.realpath(path).startswith(os.path.realpath(self.cas_dir)):
            return None
        try:
            with open(path, "rb") as handle:
                return handle.read()
        except FileNotFoundError:
            return None

    def cached_value(self, task: TaskSpec, default: typing.Any = None) -> typing.Any:
        """Convenience passthrough to the underlying CAS."""
        return self.cache.get(task, default)
