"""An OVR-Metrics-Tool-style periodic performance sampler.

The paper runs Oculus's OVR Metrics Tool on the Quest 2 to log FPS,
stale frames, CPU/GPU utilization, and memory (Sec. 3.2). Our sampler
polls the client's device state once a second and stores the same
series; experiments then average over their measurement windows.
"""

from __future__ import annotations

import dataclasses
import statistics
import typing

from ..obs.context import obs_of

#: MetricsSample fields mirrored into the obs registry as gauges.
_BRIDGED_FIELDS = (
    "fps",
    "stale_per_s",
    "cpu_pct",
    "gpu_pct",
    "memory_mb",
    "visible_avatars",
    "battery_pct",
)


@dataclasses.dataclass(frozen=True)
class MetricsSample:
    """One sampling instant of device performance counters."""

    time: float
    fps: float
    stale_per_s: float
    cpu_pct: float
    gpu_pct: float
    memory_mb: float
    visible_avatars: int
    #: Remaining battery (Sec. 6.2: <10% drained in a 10-minute run).
    battery_pct: float = 100.0


class OvrMetricsSampler:
    """Samples a client's device state at a fixed period."""

    def __init__(self, sim, client, period_s: float = 1.0) -> None:
        """``client`` must expose ``device_snapshot() -> MetricsSample``."""
        self.sim = sim
        self.client = client
        self.period_s = period_s
        self.samples: typing.List[MetricsSample] = []
        self._running = False
        # Bridge OVR-style samples into the obs registry: each sampled
        # field becomes a per-user gauge the PeriodicSnapshotter (and
        # exporters) see alongside network metrics.
        self._obs = obs_of(sim)
        self._gauges: typing.Dict[str, object] = {}
        if self._obs.enabled:
            user = getattr(client, "user_id", "device")
            self._gauges = {
                field: self._obs.registry.gauge(f"device.{field}", user=user)
                for field in _BRIDGED_FIELDS
            }

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.sim.schedule(self.period_s, self._tick)

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        sample = self.client.device_snapshot()
        self.samples.append(sample)
        if self._obs.enabled:
            for field, gauge in self._gauges.items():
                gauge.set(float(getattr(sample, field)))
        self.sim.schedule(self.period_s, self._tick)

    # ------------------------------------------------------------------
    # Aggregation over windows
    # ------------------------------------------------------------------
    def window(self, start: float, end: float) -> typing.List[MetricsSample]:
        return [s for s in self.samples if start <= s.time < end]

    def mean(self, field: str, start: float, end: float) -> typing.Optional[float]:
        values = [getattr(s, field) for s in self.window(start, end)]
        if not values:
            return None
        return statistics.fmean(values)

    def series(self, field: str) -> tuple:
        """(times, values) arrays for plotting-style output."""
        times = [s.time for s in self.samples]
        values = [getattr(s, field) for s in self.samples]
        return times, values
