"""An OVR-Metrics-Tool-style periodic performance sampler.

The paper runs Oculus's OVR Metrics Tool on the Quest 2 to log FPS,
stale frames, CPU/GPU utilization, and memory (Sec. 3.2). Our sampler
polls the client's device state once a second and stores the same
series; experiments then average over their measurement windows.
"""

from __future__ import annotations

import dataclasses
import statistics
import typing


@dataclasses.dataclass(frozen=True)
class MetricsSample:
    """One sampling instant of device performance counters."""

    time: float
    fps: float
    stale_per_s: float
    cpu_pct: float
    gpu_pct: float
    memory_mb: float
    visible_avatars: int
    #: Remaining battery (Sec. 6.2: <10% drained in a 10-minute run).
    battery_pct: float = 100.0


class OvrMetricsSampler:
    """Samples a client's device state at a fixed period."""

    def __init__(self, sim, client, period_s: float = 1.0) -> None:
        """``client`` must expose ``device_snapshot() -> MetricsSample``."""
        self.sim = sim
        self.client = client
        self.period_s = period_s
        self.samples: typing.List[MetricsSample] = []
        self._running = False

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.sim.schedule(self.period_s, self._tick)

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        self.samples.append(self.client.device_snapshot())
        self.sim.schedule(self.period_s, self._tick)

    # ------------------------------------------------------------------
    # Aggregation over windows
    # ------------------------------------------------------------------
    def window(self, start: float, end: float) -> typing.List[MetricsSample]:
        return [s for s in self.samples if start <= s.time < end]

    def mean(self, field: str, start: float, end: float) -> typing.Optional[float]:
        values = [getattr(s, field) for s in self.window(start, end)]
        if not values:
            return None
        return statistics.fmean(values)

    def series(self, field: str) -> tuple:
        """(times, values) arrays for plotting-style output."""
        times = [s.time for s in self.samples]
        values = [getattr(s, field) for s in self.samples]
        return times, values
