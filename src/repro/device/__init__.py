"""Client device models: headsets, rendering, resources, metrics."""

from .headset import (
    DEVICES,
    PC_CLIENT,
    QUEST_2,
    VIVE_COSMOS,
    HeadsetProfile,
    Resolution,
    device,
)
from .metrics import MetricsSample, OvrMetricsSampler
from .rendering import RenderCostProfile, RenderModel
from .resources import ResourceModel, ResourceProfile

__all__ = [
    "DEVICES",
    "PC_CLIENT",
    "QUEST_2",
    "VIVE_COSMOS",
    "HeadsetProfile",
    "Resolution",
    "device",
    "MetricsSample",
    "OvrMetricsSampler",
    "RenderCostProfile",
    "RenderModel",
    "ResourceModel",
    "ResourceProfile",
]
