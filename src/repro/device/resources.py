"""On-device resource model: CPU, GPU, memory, battery (Fig. 8).

The paper's Fig. 8 shows linear growth of CPU/GPU utilization and
memory with the number of users, with platform-specific slopes:
AltspaceVR shifts added load to the GPU (+25% GPU vs +15% CPU from 1 to
15 users) while the others lean on the CPU (+20% CPU vs +10-15% GPU);
each extra avatar costs ~10 MB of memory; energy is barely affected
(<10% battery over a 10-minute run).

Sec. 8.1 adds a coupling: when the downlink is throttled, the client
burns extra CPU recovering missing data (``recovery_load``), which in
turn starves rendering and the uplink path.
"""

from __future__ import annotations

import dataclasses


def _clamp(value: float, low: float = 0.0, high: float = 100.0) -> float:
    return max(low, min(high, value))


@dataclasses.dataclass(frozen=True)
class ResourceProfile:
    """Per-platform resource coefficients on a Quest 2."""

    cpu_base_pct: float
    cpu_per_avatar_pct: float
    gpu_base_pct: float
    gpu_per_avatar_pct: float
    memory_base_mb: float
    memory_per_avatar_mb: float
    #: Battery percentage drained per minute at baseline load.
    battery_pct_per_min: float
    #: Extra CPU percentage per unit of recovery load (Sec. 8.1).
    recovery_cpu_pct: float = 25.0


class ResourceModel:
    """Instantaneous resource predictions for one client."""

    def __init__(self, profile: ResourceProfile, rng=None) -> None:
        self.profile = profile
        self._rng = rng

    def _noise(self, scale: float) -> float:
        if self._rng is None:
            return 0.0
        return self._rng.gauss(0.0, scale)

    def cpu_pct(self, other_avatars: int, recovery_load: float = 0.0) -> float:
        """CPU utilization with ``other_avatars`` remote users present."""
        p = self.profile
        value = (
            p.cpu_base_pct
            + p.cpu_per_avatar_pct * other_avatars
            + p.recovery_cpu_pct * recovery_load
            + self._noise(1.5)
        )
        return _clamp(value)

    def gpu_pct(self, other_avatars: int, recovery_load: float = 0.0) -> float:
        p = self.profile
        # Under recovery pressure the GPU *drops* slightly: stale frames
        # are re-shown instead of rendered (Fig. 12(b)).
        value = (
            p.gpu_base_pct
            + p.gpu_per_avatar_pct * other_avatars
            - 6.0 * recovery_load
            + self._noise(1.5)
        )
        return _clamp(value)

    def memory_mb(self, other_avatars: int) -> float:
        p = self.profile
        return p.memory_base_mb + p.memory_per_avatar_mb * other_avatars

    def battery_drain_pct(self, duration_s: float, other_avatars: int) -> float:
        """Battery percentage consumed over ``duration_s``.

        Weakly dependent on avatar count, matching the paper's <10%
        per 10 minutes across 1-15 users.
        """
        per_min = self.profile.battery_pct_per_min * (1.0 + 0.004 * other_avatars)
        return per_min * duration_s / 60.0

    def cpu_overload_factor(self, other_avatars: int, recovery_load: float = 0.0) -> float:
        """How much CPU saturation inflates frame times (>=1).

        Below 85% utilization rendering is unaffected; beyond that the
        render thread loses its time slice proportionally.
        """
        cpu = self.cpu_pct(other_avatars, recovery_load)
        if cpu <= 85.0:
            return 1.0
        return 1.0 + (cpu - 85.0) / 15.0
