"""Headset and client device profiles (Sec. 3.2 testbed hardware).

The paper's users run Oculus Quest 2 (untethered, 72 Hz default
refresh), HTC VIVE Cosmos (tethered to a PC, 90 Hz), or a plain PC.
Throughput turned out to be device-independent (Sec. 5.1), but FPS and
resource utilization are device properties, so they live here.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class Resolution:
    """Per-eye render resolution (W x H)."""

    width: int
    height: int

    def __str__(self) -> str:
        return f"{self.width}x{self.height}"

    @property
    def pixels(self) -> int:
        return self.width * self.height


@dataclasses.dataclass(frozen=True)
class HeadsetProfile:
    """A client device: display, refresh, compute, memory, battery."""

    name: str
    kind: str  # "untethered", "tethered", or "pc"
    refresh_hz: float
    display_resolution: Resolution
    total_memory_gb: float
    battery_wh: float
    #: Relative compute scale; 1.0 = Quest 2. Tethered headsets render on
    #: the attached PC and get a larger budget.
    compute_scale: float

    @property
    def frame_interval_s(self) -> float:
        return 1.0 / self.refresh_hz


QUEST_2 = HeadsetProfile(
    name="Oculus Quest 2",
    kind="untethered",
    refresh_hz=72.0,
    display_resolution=Resolution(1832, 1920),
    total_memory_gb=6.0,
    battery_wh=14.0,
    compute_scale=1.0,
)

VIVE_COSMOS = HeadsetProfile(
    name="HTC VIVE Cosmos",
    kind="tethered",
    refresh_hz=90.0,
    display_resolution=Resolution(1440, 1700),
    total_memory_gb=16.0,
    battery_wh=float("inf"),  # mains-powered via the PC
    compute_scale=2.6,
)

PC_CLIENT = HeadsetProfile(
    name="PC (i7-7700K / GTX 1070)",
    kind="pc",
    refresh_hz=60.0,
    display_resolution=Resolution(1920, 1080),
    total_memory_gb=16.0,
    battery_wh=float("inf"),
    compute_scale=2.2,
)

DEVICES = {
    "quest2": QUEST_2,
    "vive": VIVE_COSMOS,
    "pc": PC_CLIENT,
}


def device(name: str) -> HeadsetProfile:
    """Look up a device profile by short name."""
    try:
        return DEVICES[name]
    except KeyError:
        raise KeyError(
            f"unknown device {name!r}; choose from {sorted(DEVICES)}"
        ) from None
