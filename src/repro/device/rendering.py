"""Local-rendering frame-time model and FPS accounting.

All five platforms render locally on the headset (Sec. 6.3 lists the
evidence), so per-frame cost grows with the number of visible avatars —
the mechanism behind the FPS degradation of Fig. 7. Frame time is
``base + per_avatar * visible`` (milliseconds on a Quest 2), scaled by
the device's compute budget and inflated when the app is starved for
CPU (the Sec. 8.1 disruption experiments show FPS collapsing while the
client prioritizes recovering missing data).

When frame time exceeds the refresh interval, the compositor re-shows
the previous frame: a *stale frame*, exactly what the OVR Metrics Tool
counts.
"""

from __future__ import annotations

import dataclasses

from .headset import HeadsetProfile


@dataclasses.dataclass(frozen=True)
class RenderCostProfile:
    """Per-platform rendering cost coefficients (Quest 2 baseline)."""

    base_frame_ms: float
    per_avatar_ms: float

    def frame_time_ms(
        self,
        visible_avatars: int,
        device: HeadsetProfile,
        overload_factor: float = 1.0,
    ) -> float:
        """Predicted render time of one frame, milliseconds."""
        if visible_avatars < 0:
            raise ValueError(f"visible_avatars must be >= 0, got {visible_avatars}")
        raw = self.base_frame_ms + self.per_avatar_ms * visible_avatars
        return raw * overload_factor / device.compute_scale


class RenderModel:
    """FPS and stale-frame predictions for one client device."""

    def __init__(self, cost: RenderCostProfile, device: HeadsetProfile) -> None:
        self.cost = cost
        self.device = device

    def frame_time_ms(self, visible_avatars: int, overload_factor: float = 1.0) -> float:
        return self.cost.frame_time_ms(visible_avatars, self.device, overload_factor)

    def fps(self, visible_avatars: int, overload_factor: float = 1.0) -> float:
        """Achieved FPS, capped at the display refresh rate."""
        frame_ms = self.frame_time_ms(visible_avatars, overload_factor)
        if frame_ms <= 0:
            return self.device.refresh_hz
        return min(self.device.refresh_hz, 1000.0 / frame_ms)

    def stale_frames_per_s(self, visible_avatars: int, overload_factor: float = 1.0) -> float:
        """Frames per second substituted with the previous frame."""
        return max(0.0, self.device.refresh_hz - self.fps(visible_avatars, overload_factor))

    def receiver_display_delay_s(
        self, visible_avatars: int, overload_factor: float = 1.0
    ) -> float:
        """Decode + render + compositor wait before an update is visible.

        Used by the latency breakdown (Sec. 7): receiver-side processing
        is one frame of render work plus an average half-frame wait for
        the next vsync.
        """
        frame_s = self.frame_time_ms(visible_avatars, overload_factor) / 1000.0
        return frame_s + self.device.frame_interval_s / 2
