"""repro.scale — hybrid-fidelity fluid simulation for metaverse scale.

The packet engine (``repro.platforms`` + ``repro.net``) is calibrated
and validated at the paper's room sizes (2-28 users); this package
projects the same calibration to 10^4-10^6 concurrent users:

* :mod:`.aggregate` — closed-form per-channel rate models per room and
  server architecture, byte-exact against the packet engine,
* :mod:`.fluid` — piecewise-constant rate functions through fluid
  queues (capacity, backlog, loss) plus the churn occupancy process,
* :mod:`.hybrid` — packet-level observed stations with a fluid crowd
  behind the same server (one process per room, not per attendee),
* :mod:`.shard` — fan thousands of rooms across the
  :mod:`repro.runner` campaign executor with per-room deterministic
  seeding,
* :mod:`.capacity` — fleet sizing and $/concurrent-user-hour per
  architecture.

See ``docs/SCALE.md`` for assumptions and the validity envelope.
"""

from .aggregate import (
    ARCHITECTURES,
    ChannelRate,
    RoomModel,
    expected_channel_payload_kbps,
    room_model,
)
from .capacity import (
    CapacityPlan,
    CostModel,
    capacity_table,
    plan_capacity,
)
from .fluid import (
    FluidQueueResult,
    FluidRoomResult,
    PiecewiseConstant,
    churn_occupancy,
    fluid_queue,
    simulate_room,
)
from .hybrid import FluidCrowd
from .shard import (
    ScaleResult,
    ScaleScenario,
    metaverse_scale_experiment,
    run_sharded,
    shard_ranges,
    simulate_shard,
)

__all__ = [
    "ARCHITECTURES",
    "CapacityPlan",
    "ChannelRate",
    "CostModel",
    "FluidCrowd",
    "FluidQueueResult",
    "FluidRoomResult",
    "PiecewiseConstant",
    "RoomModel",
    "ScaleResult",
    "ScaleScenario",
    "capacity_table",
    "churn_occupancy",
    "expected_channel_payload_kbps",
    "fluid_queue",
    "plan_capacity",
    "room_model",
    "run_sharded",
    "shard_ranges",
    "simulate_room",
    "simulate_shard",
]
