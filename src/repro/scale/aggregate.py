"""Per-room, per-channel rate models derived from platform profiles.

The packet engine earns its keep at 2-28 users; this module is the
bridge that lets the same calibration answer metaverse-scale questions.
Every formula here is the closed-form steady state of a packet-engine
behaviour, byte-for-byte:

* avatar update payloads come from
  :meth:`~repro.avatar.embodiment.EmbodimentProfile.update_payload_bytes`
  (the codec's own sizing),
* the forwarding server relays
  :func:`~repro.server.forwarding.forwarded_size` bytes per update
  (Hubs' HTTPS relay instead adds TLS framing and keeps the size),
* session chatter uses
  :meth:`~repro.platforms.spec.DataChannelSpec.session_payload_bytes`
  at the shared 10 Hz cadence.

Architectures mirror :mod:`repro.core.solutions`: plain forwarding
(the paper's root-cause finding), P2P meshes, interest-scoped
forwarding (Donnybrook-style), and remote rendering (Sec. 6.3).
"""

from __future__ import annotations

import dataclasses
import typing

from ..platforms.profiles import get_profile
from ..platforms.spec import (
    HTTPS_TRANSPORT,
    OVERHEAD_INTERVAL_S,
    PlatformProfile,
    TLS_FRAMING_BYTES,
    UDP_IP_HEADER_BYTES,
)
from ..server.forwarding import forwarded_size
from ..server.remote_rendering import HD_QUALITY, VideoQuality

#: The four server architectures the planner compares.
ARCHITECTURES = ("forwarding", "p2p", "interest", "remote-rendering")

#: Approximate per-message TCP/IP cost of the Hubs HTTPS relay beyond
#: the TLS record framing (one ~40 B TCP/IP header per pushed message;
#: pure ACKs in the reverse direction are ignored — see docs/SCALE.md).
TCP_IP_HEADER_BYTES = 40


@dataclasses.dataclass(frozen=True)
class ChannelRate:
    """Steady-state rate of one traffic channel in one direction."""

    channel: str  # "avatar" | "session" | "video"
    direction: str  # "up" | "down"
    packets_per_s: float
    payload_bytes_per_s: float
    wire_bytes_per_s: float

    @property
    def payload_kbps(self) -> float:
        return self.payload_bytes_per_s * 8.0 / 1000.0

    @property
    def wire_kbps(self) -> float:
        return self.wire_bytes_per_s * 8.0 / 1000.0


@dataclasses.dataclass(frozen=True)
class RoomModel:
    """One room's steady-state rates, from the observed user's seat.

    ``channels`` describe a single (observed) member; the ``server_*``
    aggregates describe the whole room at the server.
    """

    platform: str
    architecture: str
    n_users: int
    channels: typing.Tuple[ChannelRate, ...]
    server_ingress_bytes_per_s: float
    server_egress_bytes_per_s: float
    server_updates_per_s: float

    def channel(self, channel: str, direction: str) -> ChannelRate:
        for rate in self.channels:
            if rate.channel == channel and rate.direction == direction:
                return rate
        raise KeyError(f"no {direction} {channel!r} channel in this model")

    def user_up_wire_bytes_per_s(self) -> float:
        return sum(r.wire_bytes_per_s for r in self.channels if r.direction == "up")

    def user_down_wire_bytes_per_s(self) -> float:
        return sum(r.wire_bytes_per_s for r in self.channels if r.direction == "down")

    @property
    def user_down_mbps(self) -> float:
        return self.user_down_wire_bytes_per_s() * 8.0 / 1e6

    @property
    def user_up_mbps(self) -> float:
        return self.user_up_wire_bytes_per_s() * 8.0 / 1e6

    @property
    def server_egress_mbps(self) -> float:
        return self.server_egress_bytes_per_s * 8.0 / 1e6


def _resolve(platform: typing.Union[str, PlatformProfile]) -> PlatformProfile:
    if isinstance(platform, PlatformProfile):
        return platform
    return get_profile(platform)


def _viewport_factor(
    profile: PlatformProfile, viewport_factor: typing.Union[float, str, None]
) -> float:
    """Fraction of updates the server actually forwards to a member.

    ``None``/"controlled" models the testbed layout (observer facing
    the room centre, crowd inside the viewport: nothing suppressed),
    matching what the packet engine produces in the Fig. 6/7 setup.
    "uniform" models a crowd with uniformly random headings, where a
    viewport-adaptive server suppresses ``1 - width/360`` of traffic —
    the right assumption for capacity planning.
    """
    if not profile.data.viewport_adaptive:
        return 1.0
    if viewport_factor is None or viewport_factor == "controlled":
        return 1.0
    if viewport_factor == "uniform":
        return min(1.0, profile.data.server_viewport_deg / 360.0)
    return float(viewport_factor)


def room_model(
    platform: typing.Union[str, PlatformProfile],
    n_users: int,
    architecture: str = "forwarding",
    *,
    viewport_factor: typing.Union[float, str, None] = None,
    interest_set_size: int = 3,
    background_divisor: int = 5,
    video_quality: VideoQuality = HD_QUALITY,
) -> RoomModel:
    """Closed-form per-channel rates for one room of ``n_users``.

    Defaults (muted users, no game) match the measurement testbed, so
    the result is directly comparable to packet-engine runs.
    """
    if architecture not in ARCHITECTURES:
        raise ValueError(
            f"unknown architecture {architecture!r}; choose from {ARCHITECTURES}"
        )
    if n_users < 1:
        raise ValueError(f"n_users must be >= 1, got {n_users}")
    profile = _resolve(platform)
    data = profile.data
    relay = data.transport == HTTPS_TRANSPORT
    rate_hz = data.update_rate_hz
    payload = profile.embodiment.update_payload_bytes()
    up_session, down_session = data.session_payload_bytes()
    session_hz = 1.0 / OVERHEAD_INTERVAL_S
    peers = n_users - 1

    # Per-message header cost on the wire.
    if relay:
        per_msg = TLS_FRAMING_BYTES + TCP_IP_HEADER_BYTES
    else:
        per_msg = UDP_IP_HEADER_BYTES

    # What one member's update turns into on a recipient's downlink.
    if relay:
        # The relay receives the TLS-framed size (payload + one record
        # header) and its own push wraps it in another record.
        fwd = payload + 2 * TLS_FRAMING_BYTES
        fwd_wire = fwd + TCP_IP_HEADER_BYTES
    else:
        fwd = forwarded_size(payload, data.forward_fraction)
        fwd_wire = fwd + UDP_IP_HEADER_BYTES

    view = _viewport_factor(profile, viewport_factor)

    channels = [
        ChannelRate(
            "avatar",
            "up",
            packets_per_s=rate_hz,
            payload_bytes_per_s=payload * rate_hz,
            wire_bytes_per_s=(payload + per_msg) * rate_hz,
        ),
        ChannelRate(
            "session",
            "up",
            packets_per_s=session_hz,
            payload_bytes_per_s=up_session * session_hz,
            wire_bytes_per_s=(up_session + per_msg) * session_hz,
        ),
        ChannelRate(
            "session",
            "down",
            # Hubs' session acks ride the HTTPS channel and are not
            # separable as a session flow at the client (the packet
            # client does not account them either).
            packets_per_s=0.0 if relay else session_hz,
            payload_bytes_per_s=0.0 if relay else down_session * session_hz,
            wire_bytes_per_s=0.0 if relay else (down_session + per_msg) * session_hz,
        ),
    ]

    server_updates = n_users * rate_hz
    if architecture == "forwarding":
        down_rate = peers * rate_hz * view
        channels.append(
            ChannelRate(
                "avatar",
                "down",
                packets_per_s=down_rate,
                payload_bytes_per_s=fwd * down_rate,
                wire_bytes_per_s=fwd_wire * down_rate,
            )
        )
        egress = n_users * fwd_wire * down_rate + n_users * (
            0.0 if relay else (down_session + per_msg) * session_hz
        )
        ingress = n_users * ((payload + per_msg) * rate_hz + (up_session + per_msg) * session_hz)
    elif architecture == "interest":
        k = min(interest_set_size, peers)
        effective = (k + (peers - k) / background_divisor) * rate_hz * view
        channels.append(
            ChannelRate(
                "avatar",
                "down",
                packets_per_s=effective,
                payload_bytes_per_s=fwd * effective,
                wire_bytes_per_s=fwd_wire * effective,
            )
        )
        egress = n_users * fwd_wire * effective + n_users * (
            0.0 if relay else (down_session + per_msg) * session_hz
        )
        ingress = n_users * ((payload + per_msg) * rate_hz + (up_session + per_msg) * session_hz)
        server_updates = n_users * rate_hz
    elif architecture == "p2p":
        # Every member uploads its update to each peer directly; the
        # infrastructure only keeps the session/rendezvous plane.
        up_rate = peers * rate_hz
        channels[0] = ChannelRate(
            "avatar",
            "up",
            packets_per_s=up_rate,
            payload_bytes_per_s=payload * up_rate,
            wire_bytes_per_s=(payload + per_msg) * up_rate,
        )
        channels.append(
            ChannelRate(
                "avatar",
                "down",
                packets_per_s=peers * rate_hz,
                payload_bytes_per_s=payload * peers * rate_hz,
                wire_bytes_per_s=(payload + per_msg) * peers * rate_hz,
            )
        )
        egress = n_users * (0.0 if relay else (down_session + per_msg) * session_hz)
        ingress = n_users * (up_session + per_msg) * session_hz
        server_updates = 0.0
    else:  # remote-rendering
        video_bytes = video_quality.bitrate_bps / 8.0
        channels.append(
            ChannelRate(
                "video",
                "down",
                packets_per_s=video_quality.fps,
                payload_bytes_per_s=video_bytes,
                wire_bytes_per_s=video_bytes
                + video_quality.fps * UDP_IP_HEADER_BYTES,
            )
        )
        egress = n_users * (
            video_bytes
            + video_quality.fps * UDP_IP_HEADER_BYTES
            + (0.0 if relay else (down_session + per_msg) * session_hz)
        )
        ingress = n_users * ((payload + per_msg) * rate_hz + (up_session + per_msg) * session_hz)

    return RoomModel(
        platform=profile.name,
        architecture=architecture,
        n_users=n_users,
        channels=tuple(channels),
        server_ingress_bytes_per_s=ingress,
        server_egress_bytes_per_s=egress,
        server_updates_per_s=server_updates,
    )


def expected_channel_payload_kbps(
    platform: typing.Union[str, PlatformProfile], n_users: int
) -> typing.Dict[typing.Tuple[str, str], float]:
    """Per-channel *payload* Kbps the packet client's obs counters
    should report in the controlled testbed layout — the fluid side of
    the cross-validation tests and benchmark."""
    model = room_model(platform, n_users, "forwarding", viewport_factor="controlled")
    out: typing.Dict[typing.Tuple[str, str], float] = {}
    for rate in model.channels:
        out[(rate.channel, rate.direction)] = rate.payload_kbps
    return out
