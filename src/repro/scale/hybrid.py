"""Hybrid fidelity: packet-level observed stations, fluid crowd.

The paper's public events have 7-28 attendees of which only the
authors' stations are instrumented; the reproduction used to model the
rest as per-peer :class:`~repro.platforms.base.LightweightPeer`
processes (one kernel process per attendee).  :class:`FluidCrowd`
replaces that with a *single* aggregation process that injects every
crowd member's update at the server each tick — identical bytes on the
observed stations' access links (same codec payloads, same
``forwarded_size``/relay framing, same update cadence), at O(1) kernel
processes instead of O(crowd).

The observed stations stay fully packet-level: their sniffers, netem
qdiscs, TCP dynamics and device models are untouched, which is why
hybrid runs remain valid for every AP-measurable quantity.
"""

from __future__ import annotations

import math
import typing

from ..avatar.codec import AvatarCodec
from ..avatar.motion import Motion, Wander
from ..avatar.pose import Pose, Vec3
from ..obs.context import obs_of
from ..platforms.spec import TLS_FRAMING_BYTES, UDP_TRANSPORT
from ..simcore import Timeout


class _CrowdMember:
    """State of one fluid crowd participant."""

    __slots__ = ("user_id", "pose", "codec", "motion")

    def __init__(self, user_id: str, pose: Pose, codec: AvatarCodec, motion: Motion) -> None:
        self.user_id = user_id
        self.pose = pose
        self.codec = codec
        self.motion = motion


class FluidCrowd:
    """A room's unobserved crowd, aggregated into one tick process."""

    def __init__(
        self,
        sim,
        deployment,
        room_id: str,
        circle_radius: float = 0.8,
        rng_name: str = "fluid-crowd",
    ) -> None:
        self.sim = sim
        self.deployment = deployment
        self.profile = deployment.profile
        self.room_id = room_id
        self.circle_radius = circle_radius
        self._rng = sim.rng(rng_name)
        self._members: typing.List[_CrowdMember] = []
        self._next_index = 0
        self._process = None
        self._server = None
        self._obs = obs_of(sim)
        if self._obs.enabled:
            registry = self._obs.registry
            self._size_gauge = registry.gauge(
                "scale.crowd_size", fn=lambda: float(len(self._members)), room=room_id
            )
            self._updates_counter = registry.counter(
                "scale.crowd_updates_injected", room=room_id
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, at: float, initial_members: int = 0) -> None:
        """Begin ticking at ``at`` with an optional initial crowd."""
        self.sim.schedule_at(at, self._activate, initial_members)

    def _activate(self, initial_members: int) -> None:
        if self.profile.data.transport == UDP_TRANSPORT:
            self._server = next(iter(self.deployment.data_servers.values()))
        else:
            self._server = next(iter(self.deployment.control_services.values()))
        self.join(initial_members)
        self._process = self.sim.spawn(
            self._tick_loop(), name=f"fluid-crowd-{self.room_id}"
        )

    def stop(self) -> None:
        if self._process is not None and self._process.alive:
            self._process.kill()
        while self._members:
            self.leave(len(self._members) - 1)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self._members)

    def join(self, count: int = 1) -> typing.List[str]:
        """Add ``count`` members on the crowd circle (Fig. 6/7 layout)."""
        if self._server is None:
            raise RuntimeError("start() the crowd before joining members")
        joined = []
        for _ in range(count):
            index = self._next_index
            self._next_index += 1
            user_id = f"crowd-{index + 1}"
            angle = 2 * math.pi * (index % 16) / 16
            position = Vec3(
                self.circle_radius * math.cos(angle),
                0.0,
                self.circle_radius * math.sin(angle),
            )
            member = _CrowdMember(
                user_id,
                Pose(position=position),
                AvatarCodec(self.profile.embodiment),
                Wander(room_radius=1.0, speed=0.5),
            )
            self.deployment.join_room(
                self.room_id,
                user_id,
                endpoint=None,
                server=self._server,
                observed=False,
                pose=member.pose.copy(),
            )
            self._members.append(member)
            joined.append(user_id)
        return joined

    def leave(self, index: typing.Optional[int] = None) -> str:
        """Remove one member (random when ``index`` is None)."""
        if not self._members:
            raise IndexError("crowd is empty")
        if index is None:
            index = self._rng.randrange(len(self._members))
        member = self._members.pop(index)
        self.deployment.leave_room(self.room_id, member.user_id)
        return member.user_id

    # ------------------------------------------------------------------
    # The single aggregation process
    # ------------------------------------------------------------------
    def _tick_loop(self):
        interval = 1.0 / self.profile.data.update_rate_hz
        udp = self.profile.data.transport == UDP_TRANSPORT
        while True:
            yield Timeout(interval)
            for member in self._members:
                member.motion.step(member.pose, interval, self.sim.now, self._rng)
                payload_bytes, update = member.codec.encode(
                    member.user_id, member.pose, self.sim.now
                )
                if udp:
                    self._server.ingest_update(
                        self.room_id, member.user_id, payload_bytes, update
                    )
                else:
                    self._server.relay_update(
                        self.room_id,
                        member.user_id,
                        payload_bytes + TLS_FRAMING_BYTES,
                        update,
                    )
            if self._obs.enabled and self._members:
                self._updates_counter.inc(len(self._members))
