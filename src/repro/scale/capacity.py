"""Infrastructure planner: what does a metaverse-scale event cost?

The paper stops at "today's architecture does not scale" (Sec. 7);
this module quantifies the claim in deployment units.  Given a target
concurrent-user count, it sizes the server fleet per architecture
(forwarding / P2P / interest-scoped / remote rendering) from the same
per-room rate models the fluid engine uses, then prices egress and
machines so the four architectures can be compared on one axis:
dollars per concurrent user per hour.

The dollar figures are list prices of a generic public cloud (not any
specific provider) and exist for *relative* comparison between
architectures, not absolute billing.
"""

from __future__ import annotations

import dataclasses
import math
import typing

from .aggregate import ARCHITECTURES, RoomModel, room_model

#: NIC line rate of one commodity relay/session server.
SERVER_NIC_BPS = 10e9
#: Target utilisation headroom — plan at 70% of line rate.
SERVER_UTILISATION = 0.7
#: Avatar updates one relay server core can route per second
#: (forwarding is per-packet work, not per-byte work).
SERVER_UPDATES_PER_S = 300_000.0
#: Concurrent 1080p60 encodes per GPU server (NVENC-class sessions).
GPU_STREAMS_PER_SERVER = 72


@dataclasses.dataclass(frozen=True)
class CostModel:
    """Unit prices used to compare architectures."""

    usd_per_server_hour: float = 0.80  # commodity relay/session box
    usd_per_gpu_server_hour: float = 3.20  # GPU render/encode box
    usd_per_egress_gb: float = 0.05  # volume-tier internet egress


DEFAULT_COST_MODEL = CostModel()


@dataclasses.dataclass(frozen=True)
class CapacityPlan:
    """Fleet sizing for one architecture at one population."""

    platform: str
    architecture: str
    total_users: int
    users_per_room: int
    n_rooms: int
    servers: int
    gpu_servers: int
    egress_gbps: float
    user_down_mbps: float
    user_up_mbps: float
    usd_per_hour: float

    @property
    def usd_per_ccu_hour(self) -> float:
        return self.usd_per_hour / max(1, self.total_users)

    @property
    def total_servers(self) -> int:
        return self.servers + self.gpu_servers


def _servers_for(model: RoomModel, n_rooms: int) -> typing.Tuple[int, int]:
    """(relay/session servers, GPU servers) to host ``n_rooms`` rooms."""
    egress_bps = model.server_egress_bytes_per_s * 8.0 * n_rooms
    updates_per_s = model.server_updates_per_s * n_rooms
    by_egress = egress_bps / (SERVER_NIC_BPS * SERVER_UTILISATION)
    by_updates = updates_per_s / SERVER_UPDATES_PER_S
    servers = max(1, int(math.ceil(max(by_egress, by_updates))))
    gpu_servers = 0
    if model.architecture == "remote-rendering":
        streams = model.n_users * n_rooms
        gpu_servers = int(math.ceil(streams / GPU_STREAMS_PER_SERVER))
        # The relay fleet still terminates sessions/ingest, but egress
        # rides the GPU boxes' NICs.
        servers = max(
            1,
            int(
                math.ceil(
                    model.server_ingress_bytes_per_s
                    * 8.0
                    * n_rooms
                    / (SERVER_NIC_BPS * SERVER_UTILISATION)
                )
            ),
        )
    return servers, gpu_servers


def plan_capacity(
    platform: str,
    total_users: int,
    users_per_room: int = 20,
    *,
    architectures: typing.Sequence[str] = ARCHITECTURES,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    viewport_factor: typing.Union[float, str, None] = "uniform",
) -> typing.List[CapacityPlan]:
    """Size and price each architecture for ``total_users`` concurrent
    users split into rooms of ``users_per_room``."""
    if total_users < 1:
        raise ValueError("total_users must be >= 1")
    if users_per_room < 1:
        raise ValueError("users_per_room must be >= 1")
    n_rooms = int(math.ceil(total_users / users_per_room))
    plans = []
    for architecture in architectures:
        model = room_model(
            platform,
            users_per_room,
            architecture,
            viewport_factor=viewport_factor,
        )
        servers, gpu_servers = _servers_for(model, n_rooms)
        egress_bps = model.server_egress_bytes_per_s * 8.0 * n_rooms
        egress_gb_per_hour = egress_bps * 3600.0 / 8.0 / 1e9
        usd_per_hour = (
            servers * cost_model.usd_per_server_hour
            + gpu_servers * cost_model.usd_per_gpu_server_hour
            + egress_gb_per_hour * cost_model.usd_per_egress_gb
        )
        plans.append(
            CapacityPlan(
                platform=model.platform,
                architecture=architecture,
                total_users=total_users,
                users_per_room=users_per_room,
                n_rooms=n_rooms,
                servers=servers,
                gpu_servers=gpu_servers,
                egress_gbps=egress_bps / 1e9,
                user_down_mbps=model.user_down_mbps,
                user_up_mbps=model.user_up_mbps,
                usd_per_hour=usd_per_hour,
            )
        )
    return plans


def capacity_table(plans: typing.Sequence[CapacityPlan]) -> str:
    """Render plans as the aligned text table the CLI prints."""
    header = (
        f"{'architecture':<18} {'servers':>8} {'gpu':>6} {'egress':>12} "
        f"{'down/user':>10} {'up/user':>10} {'$/hour':>10} {'$/ccu-hr':>10}"
    )
    lines = [header, "-" * len(header)]
    for plan in plans:
        lines.append(
            f"{plan.architecture:<18} {plan.servers:>8,} {plan.gpu_servers:>6,} "
            f"{plan.egress_gbps:>9.2f} Gbps "
            f"{plan.user_down_mbps:>5.1f} Mbps "
            f"{plan.user_up_mbps:>5.1f} Mbps "
            f"{plan.usd_per_hour:>10,.0f} "
            f"{plan.usd_per_ccu_hour:>10.5f}"
        )
    return "\n".join(lines)
