"""Flow-level ("fluid") simulation: rates through capacities, no packets.

A packet run of a forwarding room costs O(n^2 * rate * duration) kernel
events; the fluid abstraction replaces the packet stream with a
piecewise-constant *rate function* and pushes it through link
capacities analytically.  Queueing, loss and shaping then cost O(number
of rate breakpoints) instead of O(number of packets) — which is what
makes 10^6-user scenarios tractable (the flow-level tradition of
ns-2/fluid and the traffic-forecasting literature the ISSUE cites).

Cross-validation against the packet engine lives in
``tests/test_scale_agreement.py`` and ``benchmarks/bench_scale_engine.py``.
"""

from __future__ import annotations

import bisect
import dataclasses
import math
import typing

import numpy as np

from ..capture.timeseries import ThroughputSeries
from .aggregate import RoomModel, room_model


class PiecewiseConstant:
    """A right-open piecewise-constant function of time.

    ``times`` holds ``n + 1`` ascending boundaries and ``values`` the
    ``n`` segment values; ``f(t) = values[i]`` for
    ``times[i] <= t < times[i + 1]`` and 0 outside the domain.
    """

    __slots__ = ("times", "values")

    def __init__(
        self, times: typing.Sequence[float], values: typing.Sequence[float]
    ) -> None:
        if len(times) != len(values) + 1:
            raise ValueError(
                f"need len(times) == len(values) + 1, got {len(times)}/{len(values)}"
            )
        for a, b in zip(times, times[1:]):
            if b <= a:
                raise ValueError("times must be strictly ascending")
        self.times = list(times)
        self.values = list(values)

    @classmethod
    def constant(
        cls, value: float, start: float, end: float
    ) -> "PiecewiseConstant":
        return cls([start, end], [value])

    @property
    def start(self) -> float:
        return self.times[0]

    @property
    def end(self) -> float:
        return self.times[-1]

    def at(self, t: float) -> float:
        if t < self.start or t >= self.end:
            return 0.0
        index = bisect.bisect_right(self.times, t) - 1
        return self.values[min(index, len(self.values) - 1)]

    def integral(
        self,
        start: typing.Optional[float] = None,
        end: typing.Optional[float] = None,
    ) -> float:
        """The integral of the function over ``[start, end)``."""
        a = self.start if start is None else max(start, self.start)
        b = self.end if end is None else min(end, self.end)
        if b <= a:
            return 0.0
        total = 0.0
        for t0, t1, value in zip(self.times, self.times[1:], self.values):
            lo = max(t0, a)
            hi = min(t1, b)
            if hi > lo:
                total += value * (hi - lo)
        return total

    def map(self, fn: typing.Callable[[float], float]) -> "PiecewiseConstant":
        """A new function with ``fn`` applied to every segment value.

        This is the occupancy -> rate bridge: apply a per-occupancy
        rate model to an occupancy step function and the result is the
        room's rate function, with churn breakpoints preserved.
        """
        return PiecewiseConstant(self.times, [fn(v) for v in self.values])

    def scaled(self, factor: float) -> "PiecewiseConstant":
        return PiecewiseConstant(self.times, [v * factor for v in self.values])

    def __add__(self, other: "PiecewiseConstant") -> "PiecewiseConstant":
        times = sorted(set(self.times) | set(other.times))
        values = [
            self.at(t0) + other.at(t0) for t0 in times[:-1]
        ]
        return PiecewiseConstant(times, values)

    def bins(self, start: float, end: float, bin_s: float) -> np.ndarray:
        """Per-bin integrals over ``[start, end)`` (e.g. bits per bin)."""
        if end <= start:
            raise ValueError(f"end ({end}) must exceed start ({start})")
        n_bins = int(math.ceil((end - start) / bin_s))
        out = np.zeros(n_bins)
        for index in range(n_bins):
            lo = start + index * bin_s
            hi = min(end, lo + bin_s)
            out[index] = self.integral(lo, hi)
        return out

    def to_series(self, start: float, end: float, bin_s: float) -> ThroughputSeries:
        """Bin a bits-per-second function into a ThroughputSeries —
        the same shape the packet sniffer pipeline produces."""
        bits = self.bins(start, end, bin_s)
        n_bins = len(bits)
        times = start + (np.arange(n_bins) + 0.5) * bin_s
        return ThroughputSeries(times, bits, bin_s)

    def mean(
        self,
        start: typing.Optional[float] = None,
        end: typing.Optional[float] = None,
    ) -> float:
        a = self.start if start is None else start
        b = self.end if end is None else end
        if b <= a:
            return 0.0
        return self.integral(a, b) / (b - a)

    def peak(self) -> float:
        return max(self.values) if self.values else 0.0

    def __len__(self) -> int:
        return len(self.values)


@dataclasses.dataclass
class FluidQueueResult:
    """Outcome of pushing an arrival rate through a finite-rate server."""

    served: PiecewiseConstant  # egress rate (units/s)
    backlog_times: typing.List[float]  # piecewise-linear backlog knots
    backlog_values: typing.List[float]
    offered_units: float
    served_units: float
    dropped_units: float

    @property
    def loss_fraction(self) -> float:
        if self.offered_units <= 0:
            return 0.0
        return self.dropped_units / self.offered_units

    @property
    def max_backlog(self) -> float:
        return max(self.backlog_values) if self.backlog_values else 0.0

    def max_delay_s(self, capacity_units_per_s: float) -> float:
        """Worst queueing delay implied by the backlog (FIFO drain)."""
        if capacity_units_per_s <= 0:
            return float("inf") if self.max_backlog > 0 else 0.0
        return self.max_backlog / capacity_units_per_s


def fluid_queue(
    arrival: PiecewiseConstant,
    capacity_units_per_s: float,
    buffer_units: float = float("inf"),
) -> FluidQueueResult:
    """Deterministic fluid queue: arrivals above capacity build backlog,
    backlog above ``buffer_units`` is dropped (tail drop).

    This is how shaping and disruption scenarios work without packets:
    a tc-netem rate limit becomes ``capacity_units_per_s`` and the
    served function directly gives the post-bottleneck throughput.
    """
    if capacity_units_per_s < 0:
        raise ValueError("capacity must be >= 0")
    times: typing.List[float] = []
    served: typing.List[float] = []
    backlog_t = [arrival.start]
    backlog_v = [0.0]
    q = 0.0
    dropped = 0.0

    def emit(t0: float, t1: float, rate: float) -> None:
        # ``times`` holds segment starts; boundaries are closed below.
        if t1 <= t0:
            return
        times.append(t0)
        served.append(rate)

    for t0, t1, a in zip(arrival.times, arrival.times[1:], arrival.values):
        t = t0
        while t < t1 - 1e-12:
            c = capacity_units_per_s
            if q <= 0 and a <= c:
                # Pass-through until the segment ends.
                emit(t, t1, a)
                t = t1
            elif a > c:
                # Backlog builds at (a - c); may hit the buffer bound.
                net = a - c
                if math.isinf(buffer_units):
                    emit(t, t1, c)
                    q += net * (t1 - t)
                    t = t1
                elif q < buffer_units:
                    t_full = t + (buffer_units - q) / net
                    if t_full >= t1:
                        emit(t, t1, c)
                        q += net * (t1 - t)
                        t = t1
                    else:
                        emit(t, t_full, c)
                        q = buffer_units
                        t = t_full
                else:
                    # Buffer full: everything above capacity is dropped.
                    emit(t, t1, c)
                    dropped += net * (t1 - t)
                    t = t1
            else:
                # Draining: serve at capacity until the queue empties.
                drain = c - a
                t_empty = t + (q / drain if drain > 0 else float("inf"))
                if t_empty >= t1:
                    emit(t, t1, c)
                    q -= drain * (t1 - t)
                    t = t1
                else:
                    emit(t, t_empty, c)
                    q = 0.0
                    t = t_empty
            backlog_t.append(t)
            backlog_v.append(q)

    # Close the final segment boundary and collapse equal neighbours.
    if not times:
        times, served = [arrival.start], [0.0]
    merged_times = [times[0]]
    merged_values: typing.List[float] = [served[0]]
    for start, rate in zip(times[1:], served[1:]):
        if math.isclose(merged_values[-1], rate, abs_tol=1e-12):
            continue
        merged_times.append(start)
        merged_values.append(rate)
    merged_times.append(arrival.end)
    served_fn = PiecewiseConstant(merged_times, merged_values)
    offered = arrival.integral()
    served_units = served_fn.integral()
    return FluidQueueResult(
        served=served_fn,
        backlog_times=backlog_t,
        backlog_values=backlog_v,
        offered_units=offered,
        served_units=served_units,
        dropped_units=dropped,
    )


def churn_occupancy(
    rng,
    target_users: int,
    duration_s: float,
    churn_interval_s: float = 15.0,
    churn_probability: float = 0.5,
    start_s: float = 0.0,
) -> PiecewiseConstant:
    """A public-event occupancy step function (Sec. 6.2 churn model).

    Mirrors :class:`repro.measure.workload.CrowdChurn`: every interval
    the room flips a coin; on heads a random attendee leaves (never
    below 3) or a new one arrives (never above ``target + 3``).
    """
    if target_users < 1:
        raise ValueError("target_users must be >= 1")
    times = [start_s]
    values = [float(target_users)]
    t = start_s + churn_interval_s
    occupancy = target_users
    while t < start_s + duration_s:
        if rng.random() < churn_probability:
            if rng.random() < 0.5 and occupancy > 3:
                occupancy -= 1
            elif occupancy < target_users + 3:
                occupancy += 1
        times.append(t)
        values.append(float(occupancy))
        t += churn_interval_s
    times.append(start_s + duration_s)
    return PiecewiseConstant(times, values)


@dataclasses.dataclass
class FluidRoomResult:
    """One room simulated at fluid fidelity."""

    platform: str
    architecture: str
    occupancy: PiecewiseConstant
    #: Server egress for this room, wire bits/s.
    egress_bps: PiecewiseConstant
    #: One member's downlink, wire bits/s (post access-link shaping
    #: when a capacity was given).
    viewer_down_bps: PiecewiseConstant
    user_seconds: float
    egress_bits: float
    dropped_bits: float

    @property
    def peak_egress_bps(self) -> float:
        return self.egress_bps.peak()


def simulate_room(
    platform,
    n_users: int,
    duration_s: float,
    *,
    architecture: str = "forwarding",
    occupancy: typing.Optional[PiecewiseConstant] = None,
    rng=None,
    churn_interval_s: float = 15.0,
    churn_probability: float = 0.5,
    access_capacity_bps: typing.Optional[float] = None,
    viewport_factor: typing.Union[float, str, None] = "uniform",
) -> FluidRoomResult:
    """Simulate one room analytically.

    ``occupancy`` overrides the churn model; with ``rng`` given and no
    occupancy, a churning public event is generated. With neither, the
    population is constant.  ``access_capacity_bps`` pushes the viewer
    downlink through a fluid access-link queue, so throttling scenarios
    (Sec. 8) work at this fidelity too.
    """
    if occupancy is None:
        if rng is not None:
            occupancy = churn_occupancy(
                rng,
                n_users,
                duration_s,
                churn_interval_s=churn_interval_s,
                churn_probability=churn_probability,
            )
        else:
            occupancy = PiecewiseConstant.constant(float(n_users), 0.0, duration_s)

    models: typing.Dict[int, RoomModel] = {}

    def model_for(count: float) -> RoomModel:
        key = max(1, int(round(count)))
        if key not in models:
            models[key] = room_model(
                platform, key, architecture, viewport_factor=viewport_factor
            )
        return models[key]

    egress = occupancy.map(lambda k: model_for(k).server_egress_bytes_per_s * 8.0)
    viewer_down = occupancy.map(
        lambda k: model_for(k).user_down_wire_bytes_per_s() * 8.0
    )
    dropped_bits = 0.0
    if access_capacity_bps is not None:
        shaped = fluid_queue(viewer_down, access_capacity_bps)
        dropped_bits = shaped.dropped_units
        viewer_down = shaped.served
    return FluidRoomResult(
        platform=model_for(occupancy.values[0]).platform,
        architecture=architecture,
        occupancy=occupancy,
        egress_bps=egress,
        viewer_down_bps=viewer_down,
        user_seconds=occupancy.integral(),
        egress_bits=egress.integral(),
        dropped_bits=dropped_bits,
    )
