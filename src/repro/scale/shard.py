"""Shard thousands of fluid rooms across campaign workers.

One fluid room costs microseconds, but a metaverse-scale scenario runs
10^4-10^5 of them; this module partitions the room index space into
shards, executes each shard as a :class:`~repro.runner.plan.TaskSpec`
on the :mod:`repro.runner` process pool, and merges the per-shard
binned series into one ThroughputSeries-compatible aggregate.

Determinism is per *room*, not per shard: room ``i`` always derives its
RNG from ``derive_seed(seed, "room:i")``, so the merged result is
byte-identical no matter how many shards or workers executed it.
"""

from __future__ import annotations

import dataclasses
import math
import time
import typing

import numpy as np

from ..capture.timeseries import ThroughputSeries
from ..obs.context import active_collector, obs_of  # noqa: F401  (obs_of re-exported for shard workers)
from ..qoe.cohort import mean_mos_per_bin, room_qoe
from ..simcore import derive_seed
from .aggregate import ARCHITECTURES
from .fluid import simulate_room


@dataclasses.dataclass(frozen=True)
class ScaleScenario:
    """A metaverse-scale what-if, in picklable form."""

    platform: str = "vrchat"
    architecture: str = "forwarding"
    users_per_room: int = 20
    duration_s: float = 300.0
    bin_s: float = 5.0
    churn: bool = True
    churn_interval_s: float = 15.0
    churn_probability: float = 0.5
    viewport_factor: typing.Union[float, str, None] = "uniform"

    def __post_init__(self) -> None:
        if self.architecture not in ARCHITECTURES:
            raise ValueError(
                f"unknown architecture {self.architecture!r}; "
                f"choose from {ARCHITECTURES}"
            )
        if self.users_per_room < 1:
            raise ValueError("users_per_room must be >= 1")
        if self.duration_s <= 0 or self.bin_s <= 0:
            raise ValueError("duration_s and bin_s must be positive")


def simulate_shard(
    scenario: typing.Union[ScaleScenario, dict],
    first_room: int,
    n_rooms: int,
    seed: int = 0,
) -> dict:
    """Simulate rooms ``[first_room, first_room + n_rooms)`` and return
    a picklable partial aggregate.

    Module-level and dict-in/dict-out so the campaign executor can ship
    it to a worker by reference.  Room RNGs depend only on ``seed`` and
    the absolute room index (never on the shard boundaries).
    """
    import random

    if isinstance(scenario, tuple):
        # The campaign planner canonicalizes dict kwargs into sorted
        # (name, value) pair tuples; thaw them back.
        scenario = dict(scenario)
    if isinstance(scenario, dict):
        scenario = ScaleScenario(**scenario)
    started = time.perf_counter()
    n_bins = int(math.ceil(scenario.duration_s / scenario.bin_s))
    egress_bits = np.zeros(n_bins)
    viewer_bits = np.zeros(n_bins)
    # QoE accumulates in integer micro-user-seconds: int64 addition is
    # exact and associative, so the merged totals are byte-identical no
    # matter how rooms are grouped into shards (float bin values are
    # not: summation order changes the low bits).
    mos_micro_us = np.zeros(n_bins, dtype=np.int64)
    micro_us = np.zeros(n_bins, dtype=np.int64)
    qoe_below_micro_us = 0
    user_seconds = 0.0
    peak_egress_bps = 0.0
    peak_occupancy = 0
    for room in range(first_room, first_room + n_rooms):
        rng = (
            random.Random(derive_seed(seed, f"room:{room}"))
            if scenario.churn
            else None
        )
        result = simulate_room(
            scenario.platform,
            scenario.users_per_room,
            scenario.duration_s,
            architecture=scenario.architecture,
            rng=rng,
            churn_interval_s=scenario.churn_interval_s,
            churn_probability=scenario.churn_probability,
            viewport_factor=scenario.viewport_factor,
        )
        egress_bits += result.egress_bps.bins(0.0, scenario.duration_s, scenario.bin_s)
        viewer_bits += result.viewer_down_bps.bins(
            0.0, scenario.duration_s, scenario.bin_s
        )
        user_seconds += result.user_seconds
        peak_egress_bps = max(peak_egress_bps, result.peak_egress_bps)
        peak_occupancy = max(peak_occupancy, int(max(result.occupancy.values)))
        qoe = room_qoe(result, scenario.duration_s, scenario.bin_s)
        mos_micro_us += np.rint(
            np.asarray(qoe.mos_user_seconds_per_bin) * 1e6
        ).astype(np.int64)
        micro_us += np.rint(
            np.asarray(qoe.user_seconds_per_bin) * 1e6
        ).astype(np.int64)
        qoe_below_micro_us += int(round(qoe.below_threshold_user_s * 1e6))
    return {
        "first_room": first_room,
        "n_rooms": n_rooms,
        "egress_bits_per_bin": egress_bits.tolist(),
        "viewer_bits_per_bin": viewer_bits.tolist(),
        "mos_micro_user_seconds_per_bin": mos_micro_us.tolist(),
        "micro_user_seconds_per_bin": micro_us.tolist(),
        "qoe_below_micro_user_seconds": qoe_below_micro_us,
        "user_seconds": user_seconds,
        "peak_room_egress_bps": peak_egress_bps,
        "peak_occupancy": peak_occupancy,
        "wall_time_s": time.perf_counter() - started,
    }


@dataclasses.dataclass
class ScaleResult:
    """Merged outcome of a sharded metaverse-scale run."""

    scenario: ScaleScenario
    n_rooms: int
    seed: int
    shards: int
    egress_series: ThroughputSeries  # aggregate server egress, all rooms
    viewer_series: ThroughputSeries  # mean per-room viewer downlink basis
    user_seconds: float
    peak_room_egress_bps: float
    peak_occupancy: int
    wall_time_s: float
    shard_wall_time_s: float
    #: Cohort QoE: per-bin MOS-weighted user-seconds and user-seconds
    #: (occupancy-weighted mean MOS per bin = their ratio).
    mos_user_seconds_per_bin: np.ndarray = dataclasses.field(
        default_factory=lambda: np.zeros(0)
    )
    user_seconds_per_bin: np.ndarray = dataclasses.field(
        default_factory=lambda: np.zeros(0)
    )
    #: User-seconds spent at occupancies scoring below the degraded
    #: threshold, summed over all rooms.
    qoe_below_user_seconds: float = 0.0

    @property
    def total_users(self) -> int:
        return self.n_rooms * self.scenario.users_per_room

    @property
    def mean_concurrent_users(self) -> float:
        return self.user_seconds / self.scenario.duration_s

    @property
    def mean_egress_gbps(self) -> float:
        return float(self.egress_series.bps.mean()) / 1e9

    @property
    def peak_egress_gbps(self) -> float:
        return float(self.egress_series.bps.max()) / 1e9

    @property
    def mos_per_bin(self) -> np.ndarray:
        """Occupancy-weighted mean MOS per bin across all rooms."""
        return mean_mos_per_bin(
            self.mos_user_seconds_per_bin, self.user_seconds_per_bin
        )

    @property
    def mean_mos(self) -> float:
        """User-second-weighted mean MOS over the whole run."""
        total = float(np.sum(self.user_seconds_per_bin))
        if total <= 0:
            return 0.0
        return float(np.sum(self.mos_user_seconds_per_bin)) / total

    @property
    def worst_bin_mos(self) -> float:
        """Lowest occupied-bin mean MOS (0.0 when nothing was occupied)."""
        mos = self.mos_per_bin
        occupied = mos[np.asarray(self.user_seconds_per_bin) > 0]
        return float(occupied.min()) if occupied.size else 0.0

    @property
    def qoe_degraded_user_hours(self) -> float:
        return self.qoe_below_user_seconds / 3600.0


def shard_ranges(n_rooms: int, shards: int) -> typing.List[typing.Tuple[int, int]]:
    """Contiguous ``(first_room, count)`` partitions covering all rooms."""
    if n_rooms < 1:
        raise ValueError("n_rooms must be >= 1")
    shards = max(1, min(shards, n_rooms))
    base, extra = divmod(n_rooms, shards)
    ranges = []
    first = 0
    for index in range(shards):
        count = base + (1 if index < extra else 0)
        ranges.append((first, count))
        first += count
    return ranges


def run_sharded(
    scenario: ScaleScenario,
    n_rooms: int,
    *,
    seed: int = 0,
    shards: typing.Optional[int] = None,
    parallel: typing.Optional[bool] = None,
    max_workers: typing.Optional[int] = None,
) -> ScaleResult:
    """Fan ``n_rooms`` fluid rooms out over the campaign executor.

    ``parallel=None`` auto-disables the process pool inside campaign
    workers (no nested pools) and under an active obs collector (whose
    registries are process-local).
    """
    import multiprocessing
    import os

    from ..runner import TaskSpec, run_campaign

    started = time.perf_counter()
    if shards is None:
        shards = min(4 * (os.cpu_count() or 4), max(1, n_rooms // 50) or 1)
    ranges = shard_ranges(n_rooms, shards)
    if parallel is None:
        parallel = (
            len(ranges) > 1
            and multiprocessing.parent_process() is None
            and active_collector() is None
        )
    scenario_dict = dataclasses.asdict(scenario)
    specs = [
        TaskSpec.create(
            simulate_shard,
            {"scenario": scenario_dict, "first_room": first, "n_rooms": count},
            seed=seed,
        )
        for first, count in ranges
    ]
    campaign = run_campaign(
        specs,
        parallel=parallel,
        max_workers=max_workers,
        max_retries=0,
        use_cache=False,
        cache_dir=None,
    )
    if campaign.failures:
        failure = campaign.failures[0]
        raise RuntimeError(
            f"scale shard {failure.spec.task_id} failed: {failure.error}"
        )
    partials = campaign.values()
    # Merge in room order (shard ranges are emitted in room order, and
    # campaign results come back in plan order).
    n_bins = int(math.ceil(scenario.duration_s / scenario.bin_s))
    egress_bits = np.zeros(n_bins)
    viewer_bits = np.zeros(n_bins)
    mos_micro_us = np.zeros(n_bins, dtype=np.int64)
    micro_us = np.zeros(n_bins, dtype=np.int64)
    qoe_below_micro_us = 0
    user_seconds = 0.0
    peak_room = 0.0
    peak_occupancy = 0
    shard_wall = 0.0
    for partial in partials:
        egress_bits += np.asarray(partial["egress_bits_per_bin"])
        viewer_bits += np.asarray(partial["viewer_bits_per_bin"])
        mos_micro_us += np.asarray(
            partial["mos_micro_user_seconds_per_bin"], dtype=np.int64
        )
        micro_us += np.asarray(
            partial["micro_user_seconds_per_bin"], dtype=np.int64
        )
        qoe_below_micro_us += partial["qoe_below_micro_user_seconds"]
        user_seconds += partial["user_seconds"]
        peak_room = max(peak_room, partial["peak_room_egress_bps"])
        peak_occupancy = max(peak_occupancy, partial["peak_occupancy"])
        shard_wall += partial["wall_time_s"]
    times = (np.arange(n_bins) + 0.5) * scenario.bin_s
    result = ScaleResult(
        scenario=scenario,
        n_rooms=n_rooms,
        seed=seed,
        shards=len(ranges),
        egress_series=ThroughputSeries(times, egress_bits, scenario.bin_s),
        viewer_series=ThroughputSeries(
            times, viewer_bits / max(1, n_rooms), scenario.bin_s
        ),
        user_seconds=user_seconds,
        peak_room_egress_bps=peak_room,
        peak_occupancy=peak_occupancy,
        wall_time_s=time.perf_counter() - started,
        shard_wall_time_s=shard_wall,
        mos_user_seconds_per_bin=mos_micro_us / 1e6,
        user_seconds_per_bin=micro_us / 1e6,
        qoe_below_user_seconds=qoe_below_micro_us / 1e6,
    )
    collector = active_collector()
    if collector is not None:
        obs = collector.new_observability()
        obs.registry.counter("scale.rooms_simulated").inc(n_rooms)
        obs.registry.counter("scale.user_seconds").inc(user_seconds)
        obs.registry.counter("scale.egress_bits").inc(float(egress_bits.sum()))
        obs.tracer.emit(
            "scale",
            scenario=scenario.platform,
            architecture=scenario.architecture,
            rooms=n_rooms,
            shards=len(ranges),
            wall_s=round(result.wall_time_s, 3),
        )
    return result


def metaverse_scale_experiment(
    platform: str = "vrchat",
    rooms: int = 1000,
    users_per_room: int = 20,
    duration_s: float = 120.0,
    architecture: str = "forwarding",
    seed: int = 0,
) -> dict:
    """Registry/campaign entry point: fluid fan-out + capacity plan.

    Returns a picklable summary so it can run as a campaign task.
    """
    from .capacity import plan_capacity

    scenario = ScaleScenario(
        platform=platform,
        architecture=architecture,
        users_per_room=users_per_room,
        duration_s=duration_s,
    )
    result = run_sharded(scenario, rooms, seed=seed, parallel=None)
    return {
        "platform": platform,
        "architecture": architecture,
        "rooms": rooms,
        "total_users": result.total_users,
        "mean_concurrent_users": result.mean_concurrent_users,
        "mean_egress_gbps": result.mean_egress_gbps,
        "peak_egress_gbps": result.peak_egress_gbps,
        "mean_mos": round(result.mean_mos, 6),
        "worst_bin_mos": round(result.worst_bin_mos, 6),
        "qoe_degraded_user_hours": round(result.qoe_degraded_user_hours, 6),
        "wall_time_s": result.wall_time_s,
        "capacity": [
            {
                "architecture": plan.architecture,
                "servers": plan.servers,
                "gpu_servers": plan.gpu_servers,
                "egress_gbps": plan.egress_gbps,
                "usd_per_ccu_hour": plan.usd_per_ccu_hour,
            }
            for plan in plan_capacity(
                platform, result.total_users, users_per_room=users_per_room
            )
        ],
    }
