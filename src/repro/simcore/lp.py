"""Logical-process (LP) domains: space-parallel simulation.

One scenario's event space is partitioned into *domains* — disjoint sets
of components, each owning a private :class:`~repro.simcore.kernel.Simulator`
(the :class:`DomainKernel`).  Domains interact only through explicitly
declared boundary channels (cut links in the network graph, plus a small
set of deferred server-side operations), so each kernel can execute its
own slice of the serial event set in parallel.

Correctness rests on *conservative* synchronization with lookahead:

* Every cut link has a strictly positive propagation delay ``delay_s``
  (and finite bandwidth, so serialization time is also positive).  The
  minimum cut delay ``L`` is the global **lookahead**: an event executed
  at time ``t`` in one domain can influence another domain no earlier
  than ``t + L`` (strictly later, since serialization adds > 0).
* The driver advances all domains in **windows**.  With every clock at
  the last barrier ``W`` and the earliest unprocessed event anywhere at
  ``N >= W``, every event with timestamp ``<= N + L`` is safe to run:
  any boundary crossing it generates lands strictly after ``N + L``.
* Boundary crossings travel as :class:`CrossDomainEvent` envelopes whose
  delivery timestamp is computed entirely on the sending side (the
  closed-form link datapath already knows it at enqueue time, jitter and
  FIFO clamp included).  Envelopes are injected into the target kernel
  at the next barrier, sorted by ``(time, priority, source domain,
  source sequence)`` — a deterministic refinement of the serial
  ``(time, priority, sequence)`` total order.  Two envelopes from
  *different* sources with exactly equal ``(time, priority)`` may order
  differently than the serial kernel's global sequence would have; with
  continuous delays and jitter such ties have measure zero, and the
  golden-trace gate (tests/test_lp_domains.py) verifies byte-identical
  output in practice.

Zero-lookahead interactions — direct mutations of server-side state from
a client-domain event, e.g. ``PlatformDeployment.join_room`` — cannot
ride a link envelope.  The driver therefore executes each window in two
**waves**: first every non-hub domain (in parallel), collecting such
mutations as timestamped *ops*; then the hub domain (which owns all
server state) with the ops injected at their original timestamps.  Ops
only ever flow inward to the hub, so no cycle arises.

**Fences** align every domain at one timestamp: wave-1 domains stop just
*before* a fence time ``F`` (exclusive) and the hub runs through ``F``
inclusive, so a hub event at ``F`` (a chaos fault hook, a metrics
snapshot) observes all cross-domain state exactly as the serial kernel
would — hooks are scheduled before user timers, so serially they run
first among equal-time events.  Recurring fences support periodic
snapshotters.

See docs/PARALLEL.md for the lookahead math and the speedup model.
"""

from __future__ import annotations

import heapq
import threading
import typing
from concurrent.futures import ThreadPoolExecutor

from ..obs.context import NULL_OBS
from .kernel import SimulationError, Simulator

#: The calling kernel for the wave currently executing on this thread.
#: Deferred-op bridges (``PlatformDeployment``) consult it to decide
#: whether a mutation is already running in its owner domain.
_CURRENT = threading.local()


def current_kernel():
    """The kernel whose window is executing on this thread (or None)."""
    return getattr(_CURRENT, "kernel", None)


class CrossDomainEvent:
    """An event envelope crossing an LP-domain boundary.

    Carries everything needed to replay the event in the target kernel
    while preserving the serial ``(time, priority, sequence)`` total
    order: the source domain index and the source's envelope sequence
    stand in for the global sequence when breaking (measure-zero) ties.
    """

    __slots__ = ("time", "priority", "source_domain", "source_seq", "callback", "args")

    def __init__(
        self,
        time: float,
        priority: int,
        source_domain: int,
        source_seq: int,
        callback: typing.Callable[..., None],
        args: tuple = (),
    ) -> None:
        self.time = time
        self.priority = priority
        self.source_domain = source_domain
        self.source_seq = source_seq
        self.callback = callback
        self.args = args

    def sort_key(self):
        return (self.time, self.priority, self.source_domain, self.source_seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CrossDomainEvent(t={self.time:.6f}, from=d{self.source_domain}"
            f"#{self.source_seq})"
        )


class DomainKernel(Simulator):
    """A :class:`Simulator` owning one LP domain.

    Identical to the serial kernel — components rebound into the domain
    (``component.sim = kernel``) schedule, draw RNG streams, and read
    the clock exactly as before — plus a domain identity.  The random
    ``streams`` object is shared across all sibling domains: stream
    seeds derive from the root seed and the stream *name* alone, and
    every name is drawn by exactly one domain, so sharing keeps each
    stream's draw sequence byte-identical to the serial run.

    Domain kernels default to the no-op observability bundle: kernel
    dispatch counters are per-domain and the hub (the original
    simulator) keeps whatever bundle the scenario was built with.
    """

    def __init__(
        self,
        domain_index: int,
        name: str = "",
        seed: int = 0,
        streams=None,
        obs=None,
    ) -> None:
        super().__init__(seed=seed, obs=NULL_OBS if obs is None else obs)
        self.domain_index = domain_index
        self.domain_name = name or f"domain-{domain_index}"
        if streams is not None:
            self.streams = streams

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DomainKernel({self.domain_name}, now={self._now:.6f}, "
            f"pending={self.pending_events()})"
        )


def _run_inclusive(kernel, horizon: float) -> None:
    _CURRENT.kernel = kernel
    try:
        kernel.run(until=horizon)
    finally:
        _CURRENT.kernel = None


def _run_exclusive(kernel, horizon: float) -> None:
    """Run ``kernel`` up to but *excluding* events at ``horizon``.

    Used for fence windows: events at exactly the fence time stay queued
    so the hub's fence event observes pre-fence state, then run at the
    start of the next window — the same relative order the serial kernel
    produces (fence hooks are scheduled earlier, so their sequence
    numbers sort first among equal-time events).
    """
    _CURRENT.kernel = kernel
    try:
        heap = kernel._heap
        heappop = heapq.heappop
        events = 0
        while heap:
            entry = heap[0]
            if entry[0] >= horizon:
                break
            heappop(heap)
            handle = entry[5]
            if handle is not None:
                if handle.cancelled:
                    kernel._cancelled_in_heap -= 1
                    continue
                handle._sim = None
            kernel._now = entry[0]
            events += 1
            entry[3](*entry[4])
        kernel.event_count += events
        if horizon > kernel._now:
            kernel._now = horizon
    finally:
        _CURRENT.kernel = None


class ParallelSimulator:
    """Conservative time-windowed sync driver over LP domain kernels.

    Presents the serial facade (``run(until=)``, ``now``, ``rng``,
    ``schedule_at``) over a list of kernels, one of which — the *hub*,
    index ``hub_index`` — owns all shared server-side state and runs
    second within every window (see module docstring).

    ``executor="threads"`` runs non-hub domains on a thread pool (the
    packet datapath is pure Python, so wall-clock speedup requires a
    multi-core host and arrives as free-threaded builds mature — the
    architecture, ordering, and byte-identity guarantees are identical
    either way); ``executor="serial"`` runs them in domain order on the
    calling thread, which is faster on single-core hosts.
    """

    def __init__(
        self,
        kernels: typing.Sequence,
        lookahead: float,
        hub_index: int = 0,
        executor: str = "threads",
    ) -> None:
        if not kernels:
            raise SimulationError("ParallelSimulator needs at least one kernel")
        if not (lookahead > 0.0):
            raise SimulationError(
                f"lookahead must be > 0 (got {lookahead}); a zero-delay cut "
                "link would force zero-width windows"
            )
        if executor not in ("threads", "serial"):
            raise ValueError(f"unknown executor {executor!r}")
        self.kernels = list(kernels)
        self.lookahead = float(lookahead)
        self.hub_index = hub_index
        self.executor = executor
        self.windows = 0  # sync windows executed (driver overhead metric)
        self._inboxes: list[list] = [[] for _ in self.kernels]
        self._fences: list[float] = []
        self._recurring: list[list] = []  # [next_time, period]
        self._pool: typing.Optional[ThreadPoolExecutor] = None
        self._now = 0.0
        for index, kernel in enumerate(self.kernels):
            kernel.domain_index = index
            if not hasattr(kernel, "domain_name"):
                kernel.domain_name = f"domain-{index}"
            kernel._lp_outboxes = [[] for _ in self.kernels]
            kernel._lp_env_seq = 0
            kernel._lp_ops = []
            kernel._lp_op_seq = 0

    # ------------------------------------------------------------------
    # Serial-facade surface
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """The barrier time: every domain has executed up to here."""
        return self._now

    @property
    def hub(self):
        return self.kernels[self.hub_index]

    @property
    def streams(self):
        return self.hub.streams

    def rng(self, name: str):
        return self.hub.rng(name)

    @property
    def event_count(self) -> int:
        return sum(kernel.event_count for kernel in self.kernels)

    def pending_events(self) -> int:
        return sum(kernel.pending_events() for kernel in self.kernels) + sum(
            len(box) for box in self._inboxes
        )

    def schedule_at(self, time: float, callback, *args, priority: int = 0):
        """Schedule on the hub domain.

        A hub event that reads *cross-domain* state (counters on station
        links, client gauges) must be paired with :meth:`add_fence` at
        the same time, or it will observe the other domains at their
        window horizon instead of at ``time``.
        """
        return self.hub.schedule_at(time, callback, *args, priority=priority)

    # ------------------------------------------------------------------
    # Fences
    # ------------------------------------------------------------------
    def add_fence(self, time: float) -> None:
        """Align every domain at ``time`` (one-shot)."""
        if time > self._now:
            heapq.heappush(self._fences, float(time))

    def add_fence_every(self, period: float, first: typing.Optional[float] = None) -> None:
        """Align every domain at ``first`` (default: now + period) and
        every ``period`` after — the companion of a periodic snapshotter."""
        if period <= 0.0:
            raise SimulationError(f"fence period must be > 0, got {period}")
        start = self._now + period if first is None else float(first)
        self._recurring.append([start, float(period)])

    def _next_fence(self) -> typing.Optional[float]:
        fences = self._fences
        while fences and fences[0] <= self._now:
            heapq.heappop(fences)
        best = fences[0] if fences else None
        for entry in self._recurring:
            while entry[0] <= self._now:
                entry[0] += entry[1]
            if best is None or entry[0] < best:
                best = entry[0]
        return best

    # ------------------------------------------------------------------
    # Cross-domain plumbing (used by the partitioner)
    # ------------------------------------------------------------------
    def envelope_sink(self, src_index: int, dst_index: int):
        """A callable ``sink(time, callback, args)`` boundary links use
        in place of scheduling the delivery on their own kernel."""
        src = self.kernels[src_index]
        outbox = src._lp_outboxes[dst_index]

        def sink(time: float, callback, args: tuple = ()) -> None:
            src._lp_env_seq += 1
            outbox.append(
                CrossDomainEvent(time, 0, src_index, src._lp_env_seq, callback, args)
            )

        return sink

    def calling_kernel(self):
        """The kernel executing on the current thread (None outside runs)."""
        return current_kernel()

    def defer(self, kernel, time: float, fn, args: tuple = ()) -> None:
        """Record a zero-lookahead op from ``kernel``'s window; it runs
        in the hub at ``time`` during this window's second wave."""
        kernel._lp_op_seq += 1
        kernel._lp_ops.append((time, kernel._lp_op_seq, fn, args))

    # ------------------------------------------------------------------
    # The sync driver
    # ------------------------------------------------------------------
    def run(self, until: typing.Optional[float] = None) -> float:
        """Advance every domain to ``until`` (required: with no horizon
        there is no safe window bound)."""
        if until is None:
            raise SimulationError("ParallelSimulator.run requires until=")
        kernels = self.kernels
        lookahead = self.lookahead
        hub = kernels[self.hub_index]
        others = [k for i, k in enumerate(kernels) if i != self.hub_index]
        while True:
            self._collect_envelopes()
            nxt = self._next_time()
            if nxt is None or nxt > until:
                break
            horizon = min(until, nxt + lookahead)
            fence = self._next_fence()
            exclusive = fence is not None and fence <= horizon
            if exclusive:
                horizon = fence
            self._inject_envelopes()
            self.windows += 1
            self._run_wave(others, horizon, exclusive)
            self._transfer_ops(hub)
            _run_inclusive(hub, horizon)
            self._now = horizon
        # Flush ops deferred outside any window (or left behind by the
        # last one) rather than dropping them; late stamps still raise.
        self._transfer_ops(hub)
        for kernel in kernels:
            kernel.run(until=until)
        self._now = until
        # Worker threads are cheap to respawn; shutting the pool down on
        # every return keeps campaign sweeps (hundreds of testbeds) from
        # accumulating idle threads.
        self.close()
        return until

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # ------------------------------------------------------------------
    # Driver internals
    # ------------------------------------------------------------------
    def _collect_envelopes(self) -> None:
        inboxes = self._inboxes
        for kernel in self.kernels:
            for dst, box in enumerate(kernel._lp_outboxes):
                if box:
                    inboxes[dst].extend(box)
                    del box[:]

    def _next_time(self) -> typing.Optional[float]:
        nxt = None
        for kernel in self.kernels:
            t = kernel.next_event_time()
            if t is not None and (nxt is None or t < nxt):
                nxt = t
        for box in self._inboxes:
            for envelope in box:
                if nxt is None or envelope.time < nxt:
                    nxt = envelope.time
        return nxt

    def _inject_envelopes(self) -> None:
        for dst, box in enumerate(self._inboxes):
            if not box:
                continue
            box.sort(key=CrossDomainEvent.sort_key)
            kernel = self.kernels[dst]
            heappush = heapq.heappush
            heap = kernel._heap
            for envelope in box:
                kernel._sequence += 1
                heappush(
                    heap,
                    (
                        envelope.time,
                        envelope.priority,
                        kernel._sequence,
                        envelope.callback,
                        envelope.args,
                        None,
                    ),
                )
            del box[:]

    def _run_wave(self, domains, horizon: float, exclusive: bool) -> None:
        if not domains:
            return
        runner = _run_exclusive if exclusive else _run_inclusive
        if self.executor == "serial" or len(domains) == 1:
            for kernel in domains:
                runner(kernel, horizon)
            return
        pool = self._pool
        if pool is None:
            pool = self._pool = ThreadPoolExecutor(
                max_workers=len(domains), thread_name_prefix="lp-domain"
            )
        futures = [pool.submit(runner, kernel, horizon) for kernel in domains]
        for future in futures:
            future.result()

    def _transfer_ops(self, hub) -> None:
        ops = []
        for index, kernel in enumerate(self.kernels):
            if kernel._lp_ops:
                for time, seq, fn, args in kernel._lp_ops:
                    ops.append((time, index, seq, fn, args))
                del kernel._lp_ops[:]
        if not ops:
            return
        ops.sort(key=lambda op: op[:3])
        heappush = heapq.heappush
        heap = hub._heap
        for time, _index, _seq, fn, args in ops:
            if time < hub._now:
                raise SimulationError(
                    f"deferred op at {time} behind hub clock {hub._now}"
                )
            hub._sequence += 1
            heappush(heap, (time, 0, hub._sequence, fn, args, None))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ParallelSimulator(domains={len(self.kernels)}, "
            f"lookahead={self.lookahead * 1000:.3f}ms, now={self._now:.6f}, "
            f"windows={self.windows})"
        )
