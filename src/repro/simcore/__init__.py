"""Discrete-event simulation kernel used by every substrate."""

from .events import ScheduledEvent, Signal
from .kernel import SimulationError, Simulator
from .lp import CrossDomainEvent, DomainKernel, ParallelSimulator
from .process import Process, ProcessKilled, Timeout, Wait
from .rng import RandomStreams, derive_seed
from .ticks import TickScheduler, TickTimer

__all__ = [
    "CrossDomainEvent",
    "DomainKernel",
    "ParallelSimulator",
    "ScheduledEvent",
    "Signal",
    "TickScheduler",
    "TickTimer",
    "SimulationError",
    "Simulator",
    "Process",
    "ProcessKilled",
    "Timeout",
    "Wait",
    "RandomStreams",
    "derive_seed",
]
