"""Shared coarse tick scheduler for periodic timers.

Per-user periodic senders (avatar updates, voice frames, keepalives —
dozens per simulated user) used to run as one generator process each,
paying a kernel heap push/pop plus a ``Timeout`` allocation and two
generator switches per firing.  :class:`TickScheduler` batches them: all
periodic timers live in one internal tuple heap, and the kernel sees a
single armed event per distinct firing time.  At that event every due
timer fires back-to-back in ``(next_time, registration sequence)``
order — the same relative order the per-process version produced, which
keeps shared-RNG draw sequences (e.g. the forwarding server's
processing-delay stream) byte-identical.

A timer's callback may return ``None`` (re-fire after its fixed
interval) or a float (the next delay in seconds — used by jittered
senders such as the report loop, whose interval is drawn per firing).
Cancellation is a flag checked at fire time; stale kernel armings are
tolerated and ignored.

Under LP-domain partitioning (:mod:`repro.simcore.lp`) each domain
kernel owns its own ``TickScheduler``: a component rebound into a
domain (``component.sim = kernel``) registers timers through
``self.sim.ticks``, so per-user timers land on the kernel that owns the
user — they are *pinned* to the owning domain by construction.  The
partitioner requires quiescence (see :attr:`TickScheduler.quiescent`)
before rebinding: a timer registered on one kernel never migrates.
"""

from __future__ import annotations

import heapq
import typing


class TickTimer:
    """Handle to one periodic timer registered on a :class:`TickScheduler`."""

    __slots__ = ("callback", "interval", "next_time", "cancelled")

    def __init__(self, callback: typing.Callable, interval: float) -> None:
        self.callback = callback
        self.interval = interval
        self.next_time = 0.0
        self.cancelled = False

    def cancel(self) -> None:
        """Stop the timer; it never fires again."""
        self.cancelled = True

    @property
    def active(self) -> bool:
        return not self.cancelled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else f"next={self.next_time:.6f}"
        return f"TickTimer({getattr(self.callback, '__qualname__', self.callback)}, {state})"


class TickScheduler:
    """Coalesces periodic timers into one kernel event per firing time."""

    __slots__ = ("sim", "_heap", "_sequence", "_armed_for")

    def __init__(self, sim) -> None:
        self.sim = sim
        self._heap: list[tuple] = []  # (next_time, sequence, timer)
        self._sequence = 0
        self._armed_for: typing.Optional[float] = None

    def call_every(
        self,
        interval: float,
        callback: typing.Callable,
        first_delay: typing.Optional[float] = None,
    ) -> TickTimer:
        """Register ``callback()`` every ``interval`` seconds.

        The first firing happens after ``first_delay`` (default: one
        ``interval``).  The callback may return a float to override the
        delay until its next firing.
        """
        if interval <= 0:
            raise ValueError(f"tick interval must be positive, got {interval}")
        delay = interval if first_delay is None else first_delay
        if delay < 0:
            raise ValueError(f"first_delay must be >= 0, got {delay}")
        timer = TickTimer(callback, interval)
        timer.next_time = self.sim.now + delay
        self._sequence += 1
        heapq.heappush(self._heap, (timer.next_time, self._sequence, timer))
        self._arm()
        return timer

    def __len__(self) -> int:
        """Number of live (non-cancelled) timers."""
        return sum(1 for entry in self._heap if not entry[2].cancelled)

    @property
    def quiescent(self) -> bool:
        """True when no timer is live and no kernel arming is pending —
        the state required before components may be rebound to another
        domain kernel (a registered timer cannot migrate)."""
        return len(self) == 0 and self._armed_for is None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _arm(self) -> None:
        """Ensure a kernel event covers the earliest pending firing."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
        if not heap:
            return
        head_time = heap[0][0]
        if self._armed_for is None or head_time < self._armed_for:
            self._armed_for = head_time
            self.sim._schedule_callback_at(head_time, self._fire, (head_time,))

    def _fire(self, armed_time: float) -> None:
        if armed_time != self._armed_for:
            return  # superseded by an earlier arming; nothing due here
        self._armed_for = None
        heap = self._heap
        now = self.sim.now
        heappop = heapq.heappop
        heappush = heapq.heappush
        while heap and heap[0][0] <= now:
            timer = heappop(heap)[2]
            if timer.cancelled:
                continue
            result = timer.callback()
            if timer.cancelled:
                continue  # the callback cancelled its own timer
            timer.next_time = now + (timer.interval if result is None else result)
            self._sequence += 1
            heappush(heap, (timer.next_time, self._sequence, timer))
        self._arm()
