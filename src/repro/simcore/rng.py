"""Deterministic, named random-number streams.

Every stochastic component of the simulation draws from its own named
stream so that adding a new component never perturbs the draws of an
existing one. Stream seeds are derived from the root seed and the stream
name with a stable (non-salted) hash.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from a root seed and a stream name."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """A factory of independent, reproducible ``random.Random`` streams."""

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = root_seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self.root_seed, name))
            self._streams[name] = stream
        return stream

    def reset(self) -> None:
        """Re-seed every existing stream back to its initial state."""
        for name, stream in self._streams.items():
            stream.seed(derive_seed(self.root_seed, name))

    def __contains__(self, name: str) -> bool:
        return name in self._streams
