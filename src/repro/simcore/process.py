"""Generator-based cooperative processes for the simulation kernel.

A process is a Python generator that yields *commands* telling the kernel
what to wait for:

* ``Timeout(delay)`` — resume after ``delay`` simulated seconds.
* ``Wait(signal)`` — resume when ``signal`` fires; the fired value is sent
  back into the generator.
* another ``Process`` — resume when that process terminates; its return
  value is sent back.

Processes terminate by returning (``StopIteration``). The kernel exposes
``Simulator.spawn`` to start them.
"""

from __future__ import annotations

import dataclasses
import typing

from .events import Signal


@dataclasses.dataclass(frozen=True)
class Timeout:
    """Suspend the yielding process for ``delay`` simulated seconds."""

    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError(f"Timeout delay must be >= 0, got {self.delay}")


@dataclasses.dataclass(frozen=True)
class Wait:
    """Suspend the yielding process until ``signal`` fires."""

    signal: Signal


class ProcessKilled(Exception):
    """Raised inside a process generator when it is killed externally."""


class Process:
    """A running simulation process wrapping a generator."""

    __slots__ = (
        "sim",
        "name",
        "generator",
        "alive",
        "value",
        "done_signal",
        "_pending_cancel",
        "failure",
    )

    def __init__(self, sim, generator: typing.Generator, name: str = "") -> None:
        self.sim = sim
        self.name = name or getattr(generator, "__name__", "process")
        self.generator = generator
        self.alive = True
        self.value = None
        self.failure: typing.Optional[BaseException] = None
        self.done_signal = Signal(f"{self.name}.done")
        self._pending_cancel = None

    def start(self) -> "Process":
        """Schedule the first step of the process at the current time."""
        self.sim.schedule(0.0, self._step, None)
        return self

    def kill(self) -> None:
        """Terminate the process, raising ``ProcessKilled`` inside it."""
        if not self.alive:
            return
        if self._pending_cancel is not None:
            self._pending_cancel()
            self._pending_cancel = None
        try:
            self.generator.throw(ProcessKilled())
        except (ProcessKilled, StopIteration):
            pass
        self._finish(None)

    def _finish(self, value) -> None:
        if not self.alive:
            return
        self.alive = False
        self.value = value
        self.done_signal.fire(value)

    def _fail(self, exc: BaseException) -> None:
        self.alive = False
        self.failure = exc
        raise exc

    def _step(self, send_value) -> None:
        """Advance the generator one yield, then arm the next wakeup."""
        if not self.alive:
            return
        self._pending_cancel = None
        try:
            command = self.generator.send(send_value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except ProcessKilled:
            self._finish(None)
            return
        except Exception as exc:
            self._fail(exc)
            return
        self._arm(command)

    def _arm(self, command) -> None:
        if isinstance(command, Timeout):
            handle = self.sim.schedule(command.delay, self._step, None)
            self._pending_cancel = handle.cancel
        elif isinstance(command, Wait):
            signal = command.signal
            signal.add_waiter(self._step)
            self._pending_cancel = lambda: signal.remove_waiter(self._step)
        elif isinstance(command, Process):
            other = command
            if other.alive:
                other.done_signal.add_waiter(self._step)
                self._pending_cancel = lambda: other.done_signal.remove_waiter(
                    self._step
                )
            else:
                self.sim.schedule(0.0, self._step, other.value)
        elif isinstance(command, Signal):
            command.add_waiter(self._step)
            self._pending_cancel = lambda: command.remove_waiter(self._step)
        else:
            self._fail(
                TypeError(
                    f"process {self.name!r} yielded unsupported command "
                    f"{command!r}; yield Timeout, Wait, Signal, or Process"
                )
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "done"
        return f"Process({self.name!r}, {state})"
