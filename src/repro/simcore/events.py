"""Event primitives for the discrete-event simulation kernel.

The kernel keeps a binary heap of :class:`ScheduledEvent` records. Events
compare by ``(time, priority, sequence)`` so that simultaneous events fire
in a deterministic order (FIFO among equal priorities).
"""

from __future__ import annotations

import dataclasses
import typing


@dataclasses.dataclass(order=True)
class ScheduledEvent:
    """A callback scheduled at an absolute simulation time."""

    time: float
    priority: int
    sequence: int
    callback: typing.Callable[..., None] = dataclasses.field(compare=False)
    args: tuple = dataclasses.field(compare=False, default=())
    cancelled: bool = dataclasses.field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when popped."""
        self.cancelled = True

    @property
    def active(self) -> bool:
        return not self.cancelled


class Signal:
    """A one-to-many notification channel processes can wait on.

    A signal may fire many times; each :meth:`fire` wakes every waiter
    registered at that moment and passes them the fired value.
    """

    __slots__ = ("name", "_waiters", "fire_count", "last_value")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._waiters: list = []
        self.fire_count = 0
        self.last_value = None

    def add_waiter(self, waiter) -> None:
        self._waiters.append(waiter)

    def remove_waiter(self, waiter) -> None:
        try:
            self._waiters.remove(waiter)
        except ValueError:
            pass

    def fire(self, value=None) -> int:
        """Wake all current waiters with ``value``; return how many woke."""
        self.fire_count += 1
        self.last_value = value
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter(value)
        return len(waiters)

    @property
    def waiter_count(self) -> int:
        return len(self._waiters)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Signal({self.name!r}, waiters={len(self._waiters)})"
