"""Event primitives for the discrete-event simulation kernel.

The kernel keeps a binary heap of plain tuples
``(time, priority, sequence, callback, args, handle)`` so heap sifting
compares in C — the sequence is unique, so comparison never reaches the
callback.  :class:`ScheduledEvent` is the cancellable *handle* riding in
the tuple's last slot; hot internal paths that never cancel push
``None`` there and skip the allocation entirely.
"""

from __future__ import annotations

import typing


class ScheduledEvent:
    """Handle to a callback scheduled at an absolute simulation time."""

    __slots__ = ("time", "priority", "sequence", "callback", "args", "cancelled", "_sim")

    def __init__(
        self,
        time: float,
        priority: int,
        sequence: int,
        callback: typing.Callable[..., None],
        args: tuple = (),
        cancelled: bool = False,
        sim=None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.sequence = sequence
        self.callback = callback
        self.args = args
        self.cancelled = cancelled
        self._sim = sim

    def _sort_key(self):
        return (self.time, self.priority, self.sequence)

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return self._sort_key() < other._sort_key()

    def __le__(self, other: "ScheduledEvent") -> bool:
        return self._sort_key() <= other._sort_key()

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when popped."""
        if not self.cancelled:
            self.cancelled = True
            sim = self._sim
            if sim is not None:
                sim._note_cancelled()

    @property
    def active(self) -> bool:
        return not self.cancelled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "active"
        return f"ScheduledEvent(t={self.time:.6f}, seq={self.sequence}, {state})"


class Signal:
    """A one-to-many notification channel processes can wait on.

    A signal may fire many times; each :meth:`fire` wakes every waiter
    registered at that moment and passes them the fired value.
    """

    __slots__ = ("name", "_waiters", "fire_count", "last_value")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._waiters: list = []
        self.fire_count = 0
        self.last_value = None

    def add_waiter(self, waiter) -> None:
        self._waiters.append(waiter)

    def remove_waiter(self, waiter) -> None:
        try:
            self._waiters.remove(waiter)
        except ValueError:
            pass

    def fire(self, value=None) -> int:
        """Wake all current waiters with ``value``; return how many woke."""
        self.fire_count += 1
        self.last_value = value
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter(value)
        return len(waiters)

    @property
    def waiter_count(self) -> int:
        return len(self._waiters)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Signal({self.name!r}, waiters={len(self._waiters)})"
