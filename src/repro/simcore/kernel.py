"""The discrete-event simulation kernel.

:class:`Simulator` owns the virtual clock, the event heap, and the random
streams. All substrates (network stack, devices, platform clients) hang
off one ``Simulator`` instance, so a whole testbed is reproducible from a
single seed.

The event heap holds plain tuples ``(time, priority, sequence, callback,
args, handle)`` so ``heapq`` sifting compares floats/ints in C; the
sequence is unique, so a comparison never reaches the callback.  Public
``schedule``/``schedule_at`` return a cancellable
:class:`~repro.simcore.events.ScheduledEvent` handle; internal hot paths
(:meth:`_schedule_callback` / :meth:`_schedule_callback_at`) skip the
handle allocation because they never cancel.  Cancelled entries are
skipped lazily at pop time and the heap is compacted in place when they
dominate it.

Observability hangs off the kernel too: ``sim.obs`` is either an enabled
:class:`~repro.obs.Observability` (its registry and tracer are what every
instrumented layer writes into) or the shared no-op ``NULL_OBS``.  The
kernel itself reports event dispatch counts, heap depth, and a per-
callback wall-time profile — the first place to look when a campaign
task is slow.
"""

from __future__ import annotations

import heapq
import math
import time as _time
import typing

from ..obs.context import observability_for_new_simulator
from .events import ScheduledEvent, Signal
from .process import Process
from .rng import RandomStreams

#: Compact the heap once this many cancelled entries linger *and* they
#: make up at least half of it (amortised O(1) per cancellation).
_COMPACT_MIN_CANCELLED = 64


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (e.g. scheduling in the past)."""


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Root seed for every named random stream (see :class:`RandomStreams`).
    obs:
        Observability bundle.  ``None`` (the default) resolves via
        :mod:`repro.obs.context`: an enabled instance while a collector
        is active (campaign workers, ``--metrics-out`` CLI runs), the
        shared no-op otherwise.  Pass an
        :class:`~repro.obs.Observability` to opt in explicitly.
    """

    def __init__(self, seed: int = 0, obs=None) -> None:
        self._now = 0.0
        self._heap: list[tuple] = []
        self._sequence = 0
        self._cancelled_in_heap = 0
        self._ticks = None
        self.streams = RandomStreams(seed)
        self.processes: list[Process] = []
        self.event_count = 0
        if obs is None:
            obs = observability_for_new_simulator()
        self.obs = obs
        obs.bind(self)
        #: Cached flag so the disabled path is one attribute check.
        #: Metrics-only bundles keep layer instruments live but opt out
        #: of per-event kernel profiling via ``observe_kernel``.
        self._obs_enabled = obs.enabled and getattr(obs, "observe_kernel", True)
        if self._obs_enabled:
            registry = obs.registry
            self._registry = registry
            self._events_counter = registry.counter("sim.events_dispatched")
            self._cancelled_counter = registry.counter("sim.events_cancelled")
            registry.gauge("sim.heap_depth", fn=self.pending_events)
            registry.gauge("sim.now", fn=lambda: self._now)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def rng(self, name: str):
        """Return the named deterministic random stream."""
        return self.streams.stream(name)

    @property
    def ticks(self):
        """The shared coarse tick scheduler (created on first use)."""
        if self._ticks is None:
            from .ticks import TickScheduler

            self._ticks = TickScheduler(self)
        return self._ticks

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: typing.Callable[..., None],
        *args,
        priority: int = 0,
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if not (delay >= 0.0 and math.isfinite(delay)):
            # A NaN delay would silently corrupt heapq ordering (every
            # comparison is False), so reject it loudly.
            if not math.isfinite(delay):
                raise SimulationError(f"delay must be finite, got {delay}")
            raise SimulationError(f"cannot schedule {delay}s in the past")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: typing.Callable[..., None],
        *args,
        priority: int = 0,
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if not math.isfinite(time):
            raise SimulationError(f"event time must be finite, got {time}")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        self._sequence += 1
        event = ScheduledEvent(time, priority, self._sequence, callback, args, sim=self)
        heapq.heappush(
            self._heap, (time, priority, self._sequence, callback, args, event)
        )
        return event

    def _schedule_callback(self, delay: float, callback, args: tuple = ()) -> None:
        """Hot-path scheduling: no handle, no cancellation, trusted delay."""
        self._sequence += 1
        heapq.heappush(
            self._heap, (self._now + delay, 0, self._sequence, callback, args, None)
        )

    def _schedule_callback_at(self, time: float, callback, args: tuple = ()) -> None:
        """Hot-path absolute-time scheduling (see :meth:`_schedule_callback`)."""
        self._sequence += 1
        heapq.heappush(self._heap, (time, 0, self._sequence, callback, args, None))

    def spawn(self, generator: typing.Generator, name: str = "") -> Process:
        """Start a generator as a simulation process."""
        process = Process(self, generator, name=name)
        self.processes.append(process)
        return process.start()

    def signal(self, name: str = "") -> Signal:
        """Create a named :class:`Signal` bound to no particular component."""
        return Signal(name)

    # ------------------------------------------------------------------
    # Cancellation bookkeeping
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """A live handle was cancelled; compact the heap if they dominate."""
        self._cancelled_in_heap += 1
        if (
            self._cancelled_in_heap >= _COMPACT_MIN_CANCELLED
            and self._cancelled_in_heap * 2 >= len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify (in place: the heap list
        identity is load-bearing for the run loop and obs gauges)."""
        self._heap[:] = [
            entry
            for entry in self._heap
            if entry[5] is None or not entry[5].cancelled
        ]
        heapq.heapify(self._heap)
        self._cancelled_in_heap = 0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next scheduled event; return False when none remain."""
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            handle = entry[5]
            if handle is not None:
                if handle.cancelled:
                    self._cancelled_in_heap -= 1
                    if self._obs_enabled:
                        self._cancelled_counter.inc()
                    continue
                # Fired: a later cancel() must not count against the heap.
                handle._sim = None
            self._now = entry[0]
            self.event_count += 1
            if self._obs_enabled:
                self._dispatch_observed(entry)
            else:
                entry[3](*entry[4])
            return True
        return False

    def _dispatch_observed(self, entry: tuple) -> None:
        """Dispatch one event under the tracer and wall-time profile."""
        callback = entry[3]
        label = getattr(callback, "__qualname__", None) or repr(callback)
        self._events_counter.inc()
        with self.obs.tracer.span("kernel.dispatch", callback=label):
            started = _time.perf_counter()
            callback(*entry[4])
        self._registry.histogram("sim.callback_wall_s", callback=label).observe(
            _time.perf_counter() - started
        )

    def run(self, until: typing.Optional[float] = None) -> float:
        """Run events until the heap drains or the clock passes ``until``.

        Returns the simulation time when execution stopped. When ``until``
        is given the clock is advanced to exactly ``until`` even if the
        last event fired earlier, matching wall-clock experiment windows.
        """
        heap = self._heap
        heappop = heapq.heappop
        observed = self._obs_enabled
        if observed:
            return self._run_observed(until)
        if until is None:
            events = 0
            while heap:
                entry = heappop(heap)
                handle = entry[5]
                if handle is not None:
                    if handle.cancelled:
                        self._cancelled_in_heap -= 1
                        continue
                    handle._sim = None
                self._now = entry[0]
                events += 1
                entry[3](*entry[4])
            self.event_count += events
            return self._now
        events = 0
        while heap:
            entry = heap[0]
            if entry[0] > until:
                break
            heappop(heap)
            handle = entry[5]
            if handle is not None:
                if handle.cancelled:
                    self._cancelled_in_heap -= 1
                    continue
                handle._sim = None
            self._now = entry[0]
            events += 1
            entry[3](*entry[4])
        self.event_count += events
        self._now = max(self._now, until)
        return self._now

    def _run_observed(self, until: typing.Optional[float]) -> float:
        """The instrumented twin of :meth:`run` (span + histogram per event)."""
        heap = self._heap
        while heap:
            head = heap[0]
            if until is not None and head[0] > until:
                break
            if not self.step():
                break
        if until is not None:
            self._now = max(self._now, until)
        return self._now

    def next_event_time(self) -> typing.Optional[float]:
        """Timestamp of the earliest live event, or ``None`` when drained.

        Cancelled entries encountered at the heap head are popped (the
        same lazy discard the run loop performs), so the answer is exact
        and repeated peeks stay amortised O(1).
        """
        heap = self._heap
        while heap:
            entry = heap[0]
            handle = entry[5]
            if handle is not None and handle.cancelled:
                heapq.heappop(heap)
                self._cancelled_in_heap -= 1
                if self._obs_enabled:
                    self._cancelled_counter.inc()
                continue
            return entry[0]
        return None

    def pending_events(self) -> int:
        """Number of scheduled (non-cancelled) events still in the heap.

        ``_cancelled_in_heap`` tracks exactly the cancelled entries that
        have not yet been popped or compacted away, so the live count is
        O(1) — no heap scan.
        """
        return len(self._heap) - self._cancelled_in_heap

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self._now:.6f}, pending={self.pending_events()})"
