"""The discrete-event simulation kernel.

:class:`Simulator` owns the virtual clock, the event heap, and the random
streams. All substrates (network stack, devices, platform clients) hang
off one ``Simulator`` instance, so a whole testbed is reproducible from a
single seed.

Observability hangs off the kernel too: ``sim.obs`` is either an enabled
:class:`~repro.obs.Observability` (its registry and tracer are what every
instrumented layer writes into) or the shared no-op ``NULL_OBS``.  The
kernel itself reports event dispatch counts, heap depth, and a per-
callback wall-time profile — the first place to look when a campaign
task is slow.
"""

from __future__ import annotations

import heapq
import math
import time as _time
import typing

from ..obs.context import observability_for_new_simulator
from .events import ScheduledEvent, Signal
from .process import Process
from .rng import RandomStreams


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (e.g. scheduling in the past)."""


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Root seed for every named random stream (see :class:`RandomStreams`).
    obs:
        Observability bundle.  ``None`` (the default) resolves via
        :mod:`repro.obs.context`: an enabled instance while a collector
        is active (campaign workers, ``--metrics-out`` CLI runs), the
        shared no-op otherwise.  Pass an
        :class:`~repro.obs.Observability` to opt in explicitly.
    """

    def __init__(self, seed: int = 0, obs=None) -> None:
        self._now = 0.0
        self._heap: list[ScheduledEvent] = []
        self._sequence = 0
        self.streams = RandomStreams(seed)
        self.processes: list[Process] = []
        self.event_count = 0
        if obs is None:
            obs = observability_for_new_simulator()
        self.obs = obs
        obs.bind(self)
        #: Cached flag so the disabled path is one attribute check.
        self._obs_enabled = obs.enabled
        if self._obs_enabled:
            registry = obs.registry
            self._registry = registry
            self._events_counter = registry.counter("sim.events_dispatched")
            self._cancelled_counter = registry.counter("sim.events_cancelled")
            registry.gauge("sim.heap_depth", fn=lambda: len(self._heap))
            registry.gauge("sim.now", fn=lambda: self._now)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def rng(self, name: str):
        """Return the named deterministic random stream."""
        return self.streams.stream(name)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: typing.Callable[..., None],
        *args,
        priority: int = 0,
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if not math.isfinite(delay):
            # A NaN delay would silently corrupt heapq ordering (every
            # comparison is False), so reject it loudly.
            raise SimulationError(f"delay must be finite, got {delay}")
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: typing.Callable[..., None],
        *args,
        priority: int = 0,
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if not math.isfinite(time):
            raise SimulationError(f"event time must be finite, got {time}")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        self._sequence += 1
        event = ScheduledEvent(time, priority, self._sequence, callback, args)
        heapq.heappush(self._heap, event)
        return event

    def spawn(self, generator: typing.Generator, name: str = "") -> Process:
        """Start a generator as a simulation process."""
        process = Process(self, generator, name=name)
        self.processes.append(process)
        return process.start()

    def signal(self, name: str = "") -> Signal:
        """Create a named :class:`Signal` bound to no particular component."""
        return Signal(name)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next scheduled event; return False when none remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                if self._obs_enabled:
                    self._cancelled_counter.inc()
                continue
            self._now = event.time
            self.event_count += 1
            if self._obs_enabled:
                self._dispatch_observed(event)
            else:
                event.callback(*event.args)
            return True
        return False

    def _dispatch_observed(self, event: ScheduledEvent) -> None:
        """Dispatch one event under the tracer and wall-time profile."""
        callback = event.callback
        label = getattr(callback, "__qualname__", None) or repr(callback)
        self._events_counter.inc()
        with self.obs.tracer.span("kernel.dispatch", callback=label):
            started = _time.perf_counter()
            callback(*event.args)
        self._registry.histogram("sim.callback_wall_s", callback=label).observe(
            _time.perf_counter() - started
        )

    def run(self, until: typing.Optional[float] = None) -> float:
        """Run events until the heap drains or the clock passes ``until``.

        Returns the simulation time when execution stopped. When ``until``
        is given the clock is advanced to exactly ``until`` even if the
        last event fired earlier, matching wall-clock experiment windows.
        """
        if until is None:
            while self.step():
                pass
            return self._now
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                if self._obs_enabled:
                    self._cancelled_counter.inc()
                continue
            if head.time > until:
                break
            self.step()
        self._now = max(self._now, until)
        return self._now

    def pending_events(self) -> int:
        """Number of scheduled (non-cancelled) events still in the heap."""
        return sum(1 for event in self._heap if not event.cancelled)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self._now:.6f}, pending={len(self._heap)})"
