"""The discrete-event simulation kernel.

:class:`Simulator` owns the virtual clock, the event heap, and the random
streams. All substrates (network stack, devices, platform clients) hang
off one ``Simulator`` instance, so a whole testbed is reproducible from a
single seed.
"""

from __future__ import annotations

import heapq
import typing

from .events import ScheduledEvent, Signal
from .process import Process
from .rng import RandomStreams


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (e.g. scheduling in the past)."""


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Root seed for every named random stream (see :class:`RandomStreams`).
    """

    def __init__(self, seed: int = 0) -> None:
        self._now = 0.0
        self._heap: list[ScheduledEvent] = []
        self._sequence = 0
        self.streams = RandomStreams(seed)
        self.processes: list[Process] = []
        self.event_count = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def rng(self, name: str):
        """Return the named deterministic random stream."""
        return self.streams.stream(name)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: typing.Callable[..., None],
        *args,
        priority: int = 0,
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: typing.Callable[..., None],
        *args,
        priority: int = 0,
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        self._sequence += 1
        event = ScheduledEvent(time, priority, self._sequence, callback, args)
        heapq.heappush(self._heap, event)
        return event

    def spawn(self, generator: typing.Generator, name: str = "") -> Process:
        """Start a generator as a simulation process."""
        process = Process(self, generator, name=name)
        self.processes.append(process)
        return process.start()

    def signal(self, name: str = "") -> Signal:
        """Create a named :class:`Signal` bound to no particular component."""
        return Signal(name)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next scheduled event; return False when none remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self.event_count += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: typing.Optional[float] = None) -> float:
        """Run events until the heap drains or the clock passes ``until``.

        Returns the simulation time when execution stopped. When ``until``
        is given the clock is advanced to exactly ``until`` even if the
        last event fired earlier, matching wall-clock experiment windows.
        """
        if until is None:
            while self.step():
                pass
            return self._now
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if head.time > until:
                break
            self.step()
        self._now = max(self._now, until)
        return self._now

    def pending_events(self) -> int:
        """Number of scheduled (non-cancelled) events still in the heap."""
        return sum(1 for event in self._heap if not event.cancelled)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self._now:.6f}, pending={len(self._heap)})"
