"""Packet capture at a WiFi access point (the paper's vantage point).

The testbed in Sec. 3.2 runs Wireshark on each AP. :class:`Sniffer`
reproduces that: it taps the access links of one user's device and
records per-packet metadata (never payloads — everything downstream
works from headers, as the paper's analysis had to, since all traffic is
encrypted).
"""

from __future__ import annotations

import dataclasses
import typing

from ..net.address import Endpoint
from ..net.link import Link
from ..net.packet import Packet, Protocol

UPLINK = "up"
DOWNLINK = "down"


@dataclasses.dataclass(frozen=True)
class PacketRecord:
    """Header metadata of one captured packet."""

    time: float
    src: Endpoint
    dst: Endpoint
    protocol: Protocol
    size: int
    direction: str  # UPLINK or DOWNLINK relative to the monitored device

    @property
    def remote(self) -> Endpoint:
        """The non-device end of the packet."""
        return self.dst if self.direction == UPLINK else self.src

    @property
    def local(self) -> Endpoint:
        """The device end of the packet."""
        return self.src if self.direction == UPLINK else self.dst


class Sniffer:
    """Captures packets crossing a device's access links."""

    def __init__(self, name: str = "ap-capture") -> None:
        self.name = name
        self.records: typing.List[PacketRecord] = []
        self.enabled = True

    def attach_access_links(self, uplink: Link, downlink: Link) -> None:
        """Tap the device->AP and AP->device links."""
        uplink.add_tap(self._make_tap(UPLINK))
        downlink.add_tap(self._make_tap(DOWNLINK))

    def _make_tap(self, direction: str):
        def tap(packet: Packet, link: Link) -> None:
            if not self.enabled:
                return
            self.records.append(
                PacketRecord(
                    time=link.sim.now,
                    src=packet.src,
                    dst=packet.dst,
                    protocol=packet.protocol,
                    size=packet.size,
                    direction=direction,
                )
            )

        return tap

    def clear(self) -> None:
        self.records.clear()

    def filter(
        self,
        direction: typing.Optional[str] = None,
        protocol: typing.Optional[Protocol] = None,
        remote_port: typing.Optional[int] = None,
        remote_ip=None,
        start: typing.Optional[float] = None,
        end: typing.Optional[float] = None,
    ) -> typing.List[PacketRecord]:
        """Select records matching all provided criteria."""
        out = []
        for record in self.records:
            if direction is not None and record.direction != direction:
                continue
            if protocol is not None and record.protocol is not protocol:
                continue
            if remote_port is not None and record.remote.port != remote_port:
                continue
            if remote_ip is not None and record.remote.ip != remote_ip:
                continue
            if start is not None and record.time < start:
                continue
            if end is not None and record.time >= end:
                continue
            out.append(record)
        return out

    def total_bytes(self, **kwargs) -> int:
        return sum(record.size for record in self.filter(**kwargs))

    def __len__(self) -> int:
        return len(self.records)
