"""Packet capture at a WiFi access point (the paper's vantage point).

The testbed in Sec. 3.2 runs Wireshark on each AP. :class:`Sniffer`
reproduces that: it taps the access links of one user's device and
records per-packet metadata (never payloads — everything downstream
works from headers, as the paper's analysis had to, since all traffic is
encrypted).

Two capture modes coexist:

* **Retained** (default): every packet becomes a :class:`PacketRecord`
  in :attr:`Sniffer.records` — required for pcap export, flow
  classification, and per-record latency analysis.
* **Streaming** (``retain_records=False``): consumers register
  accumulators up front (:meth:`Sniffer.stream_bins`,
  :meth:`Sniffer.stream_flows`) and the tap feeds them directly, so a
  long scalability run needs O(bins + flows) memory instead of holding
  millions of record objects.  The streamed results are byte-identical
  to their post-hoc equivalents.  Both modes can be combined.
"""

from __future__ import annotations

import dataclasses
import typing

from ..net.address import Endpoint
from ..net.link import Link
from ..net.packet import Packet, Protocol

UPLINK = "up"
DOWNLINK = "down"


@dataclasses.dataclass(frozen=True, slots=True)
class PacketRecord:
    """Header metadata of one captured packet."""

    time: float
    src: Endpoint
    dst: Endpoint
    protocol: Protocol
    size: int
    direction: str  # UPLINK or DOWNLINK relative to the monitored device

    @property
    def remote(self) -> Endpoint:
        """The non-device end of the packet."""
        return self.dst if self.direction == UPLINK else self.src

    @property
    def local(self) -> Endpoint:
        """The device end of the packet."""
        return self.src if self.direction == UPLINK else self.dst


class Sniffer:
    """Captures packets crossing a device's access links."""

    def __init__(self, name: str = "ap-capture", retain_records: bool = True) -> None:
        self.name = name
        self.retain_records = retain_records
        self._records: typing.List[PacketRecord] = []
        #: Packets seen (whether or not records are retained).
        self.captured_packets = 0
        self.enabled = True
        #: (direction filter, BinAccumulator.add) pairs fed by the tap.
        self._bin_streams: typing.List[tuple] = []
        #: Streaming flow tables fed by the tap.
        self._flow_streams: typing.List[object] = []

    @property
    def records(self) -> typing.List[PacketRecord]:
        if not self.retain_records:
            raise RuntimeError(
                f"sniffer {self.name!r} was created with retain_records=False, "
                "so per-packet records were not kept. Per-record analyses "
                "(pcap export, flow classification, latency) require "
                "retain_records=True; binned throughput is available via "
                "stream_bins()."
            )
        return self._records

    # ------------------------------------------------------------------
    # Streaming consumers
    # ------------------------------------------------------------------
    def stream_bins(
        self,
        start: float,
        end: float,
        bin_s: float = 1.0,
        direction: typing.Optional[str] = None,
    ):
        """Register a :class:`~repro.capture.timeseries.BinAccumulator`
        fed live from this sniffer's taps (optionally one direction)."""
        from .timeseries import BinAccumulator

        accumulator = BinAccumulator(start, end, bin_s)
        self._bin_streams.append((direction, accumulator.add))
        return accumulator

    def stream_flows(self):
        """Register a live :class:`~repro.capture.flows.StreamingFlowTable`."""
        from .flows import StreamingFlowTable

        table = StreamingFlowTable()
        self._flow_streams.append(table)
        return table

    # ------------------------------------------------------------------
    # Capture
    # ------------------------------------------------------------------
    def attach_access_links(self, uplink: Link, downlink: Link) -> None:
        """Tap the device->AP and AP->device links."""
        uplink.add_tap(self._make_tap(UPLINK))
        downlink.add_tap(self._make_tap(DOWNLINK))

    def _make_tap(self, direction: str):
        retain = self.retain_records
        records_append = self._records.append

        def tap(packet: Packet, link: Link) -> None:
            if not self.enabled:
                return
            self.captured_packets += 1
            time = link.sim._now
            if self._bin_streams:
                size = packet.size
                for want, add in self._bin_streams:
                    if want is None or want == direction:
                        add(time, size)
            for table in self._flow_streams:
                table.observe(time, packet, direction)
            if retain:
                records_append(
                    PacketRecord(
                        time=time,
                        src=packet.src,
                        dst=packet.dst,
                        protocol=packet.protocol,
                        size=packet.size,
                        direction=direction,
                    )
                )

        return tap

    def clear(self) -> None:
        self._records.clear()
        self.captured_packets = 0

    def filter(
        self,
        direction: typing.Optional[str] = None,
        protocol: typing.Optional[Protocol] = None,
        remote_port: typing.Optional[int] = None,
        remote_ip=None,
        start: typing.Optional[float] = None,
        end: typing.Optional[float] = None,
    ) -> typing.List[PacketRecord]:
        """Select records matching all provided criteria."""
        out = []
        for record in self.records:
            if direction is not None and record.direction != direction:
                continue
            if protocol is not None and record.protocol is not protocol:
                continue
            if remote_port is not None and record.remote.port != remote_port:
                continue
            if remote_ip is not None and record.remote.ip != remote_ip:
                continue
            if start is not None and record.time < start:
                continue
            if end is not None and record.time >= end:
                continue
            out.append(record)
        return out

    def total_bytes(self, **kwargs) -> int:
        return sum(record.size for record in self.filter(**kwargs))

    def __len__(self) -> int:
        return len(self._records) if self.retain_records else self.captured_packets
