"""Traffic capture and analysis at the AP vantage point."""

from .classify import (
    CONTROL,
    DATA,
    ClassifiedFlow,
    channel_flows,
    channel_records,
    classify_by_activity,
    classify_by_protocol,
    protocol_label,
)
from .flows import Flow, FlowTable, StreamingFlowTable
from .pcap import PcapPacket, export_sniffer, read_pcap, write_pcap
from .sniffer import DOWNLINK, PacketRecord, Sniffer, UPLINK
from .timeseries import (
    BinAccumulator,
    ThroughputSeries,
    average_kbps,
    correlation,
    throughput_series,
)

__all__ = [
    "CONTROL",
    "DATA",
    "ClassifiedFlow",
    "channel_flows",
    "channel_records",
    "classify_by_activity",
    "classify_by_protocol",
    "protocol_label",
    "Flow",
    "FlowTable",
    "StreamingFlowTable",
    "BinAccumulator",
    "PcapPacket",
    "export_sniffer",
    "read_pcap",
    "write_pcap",
    "DOWNLINK",
    "PacketRecord",
    "Sniffer",
    "UPLINK",
    "ThroughputSeries",
    "average_kbps",
    "correlation",
    "throughput_series",
]
