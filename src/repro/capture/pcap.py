"""Export captures to the classic libpcap file format.

The paper's raw artifact is a set of Wireshark captures; this module
lets a simulated capture leave the library the same way, as a
``.pcap`` file (classic format, LINKTYPE_RAW: packets start at the
IPv4 header) loadable in Wireshark/tcpdump/scapy. Payload bytes are
zeros — platform traffic is encrypted anyway and every analysis in the
paper works from headers and sizes — but addresses, ports, protocol,
lengths, and timestamps are faithful.

A matching reader is provided for round-tripping in tests and for
re-importing previously exported captures.
"""

from __future__ import annotations

import dataclasses
import struct
import typing

from ..net.address import Endpoint, IPAddress
from ..net.packet import Protocol
from .sniffer import DOWNLINK, PacketRecord, UPLINK

PCAP_MAGIC = 0xA1B2C3D4
PCAP_VERSION = (2, 4)
#: LINKTYPE_RAW: packet data begins with the IPv4/IPv6 header.
LINKTYPE_RAW = 101
SNAPLEN = 65_535

_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")
_IPV4_HEADER = struct.Struct("!BBHHHBBHII")
_UDP_HEADER = struct.Struct("!HHHH")
_TCP_HEADER = struct.Struct("!HHIIBBHHH")
_ICMP_HEADER = struct.Struct("!BBHI")

_IP_PROTO = {Protocol.ICMP: 1, Protocol.TCP: 6, Protocol.UDP: 17}
_IP_PROTO_REVERSE = {v: k for k, v in _IP_PROTO.items()}


def write_pcap(records: typing.Sequence[PacketRecord], path: str) -> int:
    """Write ``records`` to ``path``; returns the number written."""
    with open(path, "wb") as handle:
        handle.write(
            _GLOBAL_HEADER.pack(
                PCAP_MAGIC, *PCAP_VERSION, 0, 0, SNAPLEN, LINKTYPE_RAW
            )
        )
        count = 0
        for record in sorted(records, key=lambda r: r.time):
            frame = _synthesize_frame(record)
            seconds = int(record.time)
            micros = int(round((record.time - seconds) * 1_000_000))
            if micros >= 1_000_000:
                seconds += 1
                micros -= 1_000_000
            handle.write(
                _RECORD_HEADER.pack(seconds, micros, len(frame), len(frame))
            )
            handle.write(frame)
            count += 1
    return count


def _synthesize_frame(record: PacketRecord) -> bytes:
    """Build an IPv4 frame matching the record's headers and size."""
    total_length = max(record.size, 28)
    ip_payload_len = total_length - 20
    header = _IPV4_HEADER.pack(
        0x45,  # version 4, IHL 5
        0,
        total_length & 0xFFFF,
        0,
        0,
        64,
        _IP_PROTO[record.protocol],
        0,  # checksum left zero (valid for analysis tooling)
        record.src.ip.value,
        record.dst.ip.value,
    )
    if record.protocol is Protocol.UDP:
        transport = _UDP_HEADER.pack(
            record.src.port, record.dst.port, ip_payload_len & 0xFFFF, 0
        )
    elif record.protocol is Protocol.TCP:
        transport = _TCP_HEADER.pack(
            record.src.port, record.dst.port, 0, 0, 0x50, 0x10, 8192, 0, 0
        )
    else:
        transport = _ICMP_HEADER.pack(8, 0, 0, 0)
    padding = b"\x00" * max(0, ip_payload_len - len(transport))
    return header + transport + padding


@dataclasses.dataclass(frozen=True)
class PcapPacket:
    """One packet parsed back from a pcap file."""

    time: float
    src: Endpoint
    dst: Endpoint
    protocol: Protocol
    size: int


def read_pcap(path: str) -> typing.List[PcapPacket]:
    """Parse a pcap file written by :func:`write_pcap`."""
    with open(path, "rb") as handle:
        data = handle.read()
    magic, major, minor, _tz, _sig, _snaplen, linktype = _GLOBAL_HEADER.unpack_from(
        data, 0
    )
    if magic != PCAP_MAGIC:
        raise ValueError(f"not a pcap file (magic 0x{magic:08x})")
    if linktype != LINKTYPE_RAW:
        raise ValueError(f"unsupported link type {linktype}")
    packets = []
    offset = _GLOBAL_HEADER.size
    while offset + _RECORD_HEADER.size <= len(data):
        seconds, micros, incl_len, _orig_len = _RECORD_HEADER.unpack_from(
            data, offset
        )
        offset += _RECORD_HEADER.size
        frame = data[offset : offset + incl_len]
        offset += incl_len
        packets.append(_parse_frame(seconds + micros / 1_000_000, frame))
    return packets


def _parse_frame(time: float, frame: bytes) -> PcapPacket:
    (
        _vihl,
        _tos,
        total_length,
        _ident,
        _frag,
        _ttl,
        proto,
        _checksum,
        src_ip,
        dst_ip,
    ) = _IPV4_HEADER.unpack_from(frame, 0)
    protocol = _IP_PROTO_REVERSE[proto]
    if protocol in (Protocol.UDP, Protocol.TCP):
        src_port, dst_port = struct.unpack_from("!HH", frame, 20)
    else:
        src_port = dst_port = 0
    return PcapPacket(
        time=time,
        src=Endpoint(IPAddress(src_ip), src_port),
        dst=Endpoint(IPAddress(dst_ip), dst_port),
        protocol=protocol,
        size=total_length,
    )


def export_sniffer(sniffer, path: str) -> int:
    """Convenience: dump a :class:`Sniffer`'s records to ``path``."""
    return write_pcap(sniffer.records, path)
