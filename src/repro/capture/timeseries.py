"""Throughput time series from packet captures.

The figures in Secs. 4-6 and 8 plot instantaneous throughput binned over
time (Kbps or Mbps). These helpers bin :class:`PacketRecord` streams the
same way.
"""

from __future__ import annotations

import typing

import numpy as np

from .sniffer import PacketRecord


class ThroughputSeries:
    """A binned throughput series with convenient unit accessors."""

    def __init__(self, times_s: np.ndarray, bits_per_bin: np.ndarray, bin_s: float) -> None:
        self.times_s = times_s
        self.bits_per_bin = bits_per_bin
        self.bin_s = bin_s

    @property
    def bps(self) -> np.ndarray:
        return self.bits_per_bin / self.bin_s

    @property
    def kbps(self) -> np.ndarray:
        return self.bps / 1e3

    @property
    def mbps(self) -> np.ndarray:
        return self.bps / 1e6

    def mean_kbps(self, start: typing.Optional[float] = None, end: typing.Optional[float] = None) -> float:
        """Average throughput (Kbps) over [start, end)."""
        mask = np.ones_like(self.times_s, dtype=bool)
        if start is not None:
            mask &= self.times_s >= start
        if end is not None:
            mask &= self.times_s < end
        if not mask.any():
            return 0.0
        return float(self.kbps[mask].mean())

    def max_kbps(self) -> float:
        return float(self.kbps.max()) if len(self.kbps) else 0.0

    def __len__(self) -> int:
        return len(self.times_s)


def throughput_series(
    records: typing.Sequence[PacketRecord],
    start: float,
    end: float,
    bin_s: float = 1.0,
) -> ThroughputSeries:
    """Bin ``records`` into a throughput series over [start, end)."""
    if end <= start:
        raise ValueError(f"end ({end}) must exceed start ({start})")
    n_bins = int(np.ceil((end - start) / bin_s))
    bits = np.zeros(n_bins)
    for record in records:
        if start <= record.time < end:
            index = int((record.time - start) / bin_s)
            if index >= n_bins:
                index = n_bins - 1
            bits[index] += record.size * 8
    times = start + (np.arange(n_bins) + 0.5) * bin_s
    return ThroughputSeries(times, bits, bin_s)


class BinAccumulator:
    """Streaming twin of :func:`throughput_series`.

    Fed one packet at a time (via :meth:`Sniffer.stream_bins
    <repro.capture.sniffer.Sniffer.stream_bins>`) instead of from a
    retained record list, so long captures need O(bins) memory instead
    of O(packets).  Binning uses the exact same index arithmetic as
    :func:`throughput_series`, and per-bin sums are exact integer bit
    counts either way — the resulting :class:`ThroughputSeries` is
    byte-identical to the post-hoc one.
    """

    __slots__ = ("start", "end", "bin_s", "n_bins", "_bits")

    def __init__(self, start: float, end: float, bin_s: float = 1.0) -> None:
        if end <= start:
            raise ValueError(f"end ({end}) must exceed start ({start})")
        self.start = start
        self.end = end
        self.bin_s = bin_s
        self.n_bins = int(np.ceil((end - start) / bin_s))
        self._bits = [0] * self.n_bins

    def add(self, time: float, size: int) -> None:
        """Account one packet of ``size`` bytes captured at ``time``."""
        if self.start <= time < self.end:
            index = int((time - self.start) / self.bin_s)
            if index >= self.n_bins:
                index = self.n_bins - 1
            self._bits[index] += size * 8

    @property
    def total_bits(self) -> int:
        return sum(self._bits)

    def average_kbps(self) -> float:
        """Average throughput over the accumulator's full window."""
        return self.total_bits / (self.end - self.start) / 1e3

    def series(self) -> ThroughputSeries:
        """The accumulated bins as a :class:`ThroughputSeries`."""
        times = self.start + (np.arange(self.n_bins) + 0.5) * self.bin_s
        return ThroughputSeries(times, np.asarray(self._bits, dtype=float), self.bin_s)


def average_kbps(
    records: typing.Sequence[PacketRecord], start: float, end: float
) -> float:
    """Average throughput in Kbps over [start, end)."""
    if end <= start:
        raise ValueError(f"end ({end}) must exceed start ({start})")
    total_bits = sum(r.size * 8 for r in records if start <= r.time < end)
    return total_bits / (end - start) / 1e3


def correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Pearson correlation between two equal-length series.

    Used for the Fig. 3 analysis: U1's uplink closely matches U2's
    downlink when servers simply forward avatar data.
    """
    if len(a) != len(b):
        raise ValueError(f"series length mismatch: {len(a)} vs {len(b)}")
    if len(a) < 2:
        return 0.0
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    sa, sb = a.std(), b.std()
    if sa == 0 or sb == 0:
        return 0.0
    return float(np.corrcoef(a, b)[0, 1])
