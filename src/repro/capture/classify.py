"""Control- vs data-channel classification (Sec. 4.1).

The paper separates each platform's traffic into a control channel and a
data channel using two signals observable at the AP:

1. *Protocol and endpoint*: HTTPS (TCP/443) flows versus UDP/RTP flows,
   terminating at servers with different owners, locations, or
   hostnames.
2. *Activity phase*: control channels are busiest on the welcome page,
   data channels during social events (Fig. 2). Hubs is the exception —
   both its channels are active during events.

Both classifiers are implemented here; experiments cross-check them.
"""

from __future__ import annotations

import dataclasses
import typing

from ..net.packet import Protocol
from .flows import Flow, FlowTable

CONTROL = "control"
DATA = "data"

#: UDP ports conventionally used for RTP media by the platforms we model.
RTP_PORT_RANGE = range(5000, 5100)


@dataclasses.dataclass
class ClassifiedFlow:
    """A flow with its inferred channel and protocol label."""

    flow: Flow
    channel: str  # CONTROL or DATA
    protocol_label: str  # "HTTPS", "UDP", or "RTP/RTCP"


def protocol_label(flow: Flow) -> str:
    """Human-readable protocol name as the paper's Table 2 lists them."""
    if flow.protocol is Protocol.TCP:
        return "HTTPS" if flow.remote.port == 443 else "TCP"
    if flow.protocol is Protocol.UDP:
        if flow.remote.port in RTP_PORT_RANGE:
            return "RTP/RTCP"
        return "UDP"
    return str(flow.protocol).upper()


def classify_by_protocol(table: FlowTable) -> typing.List[ClassifiedFlow]:
    """Rule 1: HTTPS flows are control, UDP/RTP flows are data.

    For Web-based platforms (Hubs), HTTPS flows that carry sustained
    event-phase traffic are reclassified by the activity rule; callers
    who know the event window should prefer :func:`classify_by_activity`.
    """
    out = []
    for flow in table:
        label = protocol_label(flow)
        channel = CONTROL if flow.protocol is Protocol.TCP else DATA
        out.append(ClassifiedFlow(flow, channel, label))
    return out


def classify_by_activity(
    table: FlowTable,
    welcome_window: tuple,
    event_window: tuple,
    min_bytes: int = 512,
) -> typing.List[ClassifiedFlow]:
    """Rule 2: label flows by which experiment phase dominates them.

    ``welcome_window`` and ``event_window`` are (start, end) pairs.
    A flow whose event-phase byte *rate* exceeds its welcome-phase rate
    is a data-channel flow. Tiny flows (< ``min_bytes`` total) keep the
    protocol-based label because phase rates are too noisy.
    """
    w_start, w_end = welcome_window
    e_start, e_end = event_window
    w_dur = max(w_end - w_start, 1e-9)
    e_dur = max(e_end - e_start, 1e-9)
    # When a substantial UDP data plane exists (>= 2 Kbps during the
    # event), HTTPS flows are control regardless of phase (Worlds'
    # periodic in-event reports are still control traffic, Sec. 4.1).
    # Web-based platforms (Hubs) have no such UDP plane — RTCP
    # keepalives are far below the bar — so the activity rule splits
    # their HTTPS flows instead.
    has_udp_data = any(
        flow.protocol is Protocol.UDP
        and flow.bytes_between(e_start, e_end) * 8.0 / (e_dur * 1000.0) >= 2.0
        for flow in table
    )
    out = []
    for flow in table:
        label = protocol_label(flow)
        if flow.protocol is Protocol.TCP and has_udp_data:
            channel = CONTROL
        elif flow.total_bytes < min_bytes:
            channel = CONTROL if flow.protocol is Protocol.TCP else DATA
        else:
            welcome_rate = flow.bytes_between(w_start, w_end) / w_dur
            event_rate = flow.bytes_between(e_start, e_end) / e_dur
            channel = DATA if event_rate > welcome_rate else CONTROL
        out.append(ClassifiedFlow(flow, channel, label))
    return out


def channel_flows(
    classified: typing.Sequence[ClassifiedFlow], channel: str
) -> typing.List[Flow]:
    """Flows labelled with ``channel``."""
    return [c.flow for c in classified if c.channel == channel]


def channel_records(
    classified: typing.Sequence[ClassifiedFlow], channel: str
) -> list:
    """All packet records of every flow labelled ``channel``."""
    records = []
    for item in classified:
        if item.channel == channel:
            records.extend(item.flow.records)
    records.sort(key=lambda r: r.time)
    return records
