"""Flow table: grouping captured packets into bidirectional flows.

A flow is keyed by (local port, remote endpoint, protocol) relative to
the monitored device: each socket/connection is one flow. This matters
for Hubs, whose control requests and avatar WebSocket share one server
but ride separate TCP connections (the paper classifies them as
different channels).
"""

from __future__ import annotations

import dataclasses
import typing

from ..net.address import Endpoint
from ..net.packet import Protocol
from .sniffer import DOWNLINK, PacketRecord, UPLINK


@dataclasses.dataclass
class Flow:
    """Aggregated statistics of one device<->server flow."""

    remote: Endpoint
    protocol: Protocol
    local_port: int = 0
    up_packets: int = 0
    up_bytes: int = 0
    down_packets: int = 0
    down_bytes: int = 0
    first_time: float = float("inf")
    last_time: float = float("-inf")
    records: typing.List[PacketRecord] = dataclasses.field(default_factory=list)

    def add(self, record: PacketRecord) -> None:
        if record.direction == UPLINK:
            self.up_packets += 1
            self.up_bytes += record.size
        else:
            self.down_packets += 1
            self.down_bytes += record.size
        self.first_time = min(self.first_time, record.time)
        self.last_time = max(self.last_time, record.time)
        self.records.append(record)

    @property
    def total_bytes(self) -> int:
        return self.up_bytes + self.down_bytes

    @property
    def total_packets(self) -> int:
        return self.up_packets + self.down_packets

    @property
    def duration(self) -> float:
        if self.last_time < self.first_time:
            return 0.0
        return self.last_time - self.first_time

    def bytes_between(self, start: float, end: float, direction=None) -> int:
        """Bytes captured in [start, end), optionally one direction."""
        return sum(
            r.size
            for r in self.records
            if start <= r.time < end
            and (direction is None or r.direction == direction)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Flow({self.protocol} {self.remote} "
            f"up={self.up_bytes}B down={self.down_bytes}B)"
        )


class FlowTable:
    """Builds and indexes flows from a capture."""

    def __init__(self, records: typing.Iterable[PacketRecord]) -> None:
        self.flows: dict[tuple, Flow] = {}
        for record in records:
            key = (record.local.port, record.remote, record.protocol)
            flow = self.flows.get(key)
            if flow is None:
                flow = Flow(
                    remote=record.remote,
                    protocol=record.protocol,
                    local_port=record.local.port,
                )
                self.flows[key] = flow
            flow.add(record)

    def __len__(self) -> int:
        return len(self.flows)

    def __iter__(self):
        return iter(self.flows.values())

    def by_protocol(self, protocol: Protocol) -> typing.List[Flow]:
        return [f for f in self.flows.values() if f.protocol is protocol]

    def largest(self, count: int = 5) -> typing.List[Flow]:
        return sorted(self.flows.values(), key=lambda f: -f.total_bytes)[:count]

    def remote_endpoints(self) -> typing.List[Endpoint]:
        return sorted({f.remote for f in self.flows.values()})


class StreamingFlowTable(FlowTable):
    """A flow table fed incrementally from a live sniffer tap.

    Maintains exactly the aggregates :class:`FlowTable` computes post
    hoc (packet/byte counters per direction, first/last times) without
    retaining :class:`PacketRecord` objects — each ``Flow.records`` list
    stays empty, so per-record queries like :meth:`Flow.bytes_between`
    are unavailable in this mode.  Register via
    :meth:`Sniffer.stream_flows <repro.capture.sniffer.Sniffer.stream_flows>`.
    """

    def __init__(self) -> None:
        super().__init__(())

    def observe(self, time: float, packet, direction: str) -> None:
        if direction == UPLINK:
            local_port, remote = packet.src.port, packet.dst
        else:
            local_port, remote = packet.dst.port, packet.src
        key = (local_port, remote, packet.protocol)
        flow = self.flows.get(key)
        if flow is None:
            flow = self.flows[key] = Flow(
                remote=remote, protocol=packet.protocol, local_port=local_port
            )
        size = packet.size
        if direction == UPLINK:
            flow.up_packets += 1
            flow.up_bytes += size
        else:
            flow.down_packets += 1
            flow.down_bytes += size
        if time < flow.first_time:
            flow.first_time = time
        if time > flow.last_time:
            flow.last_time = time
